"""Crash-safe checkpointing: format validation, kill/resume equivalence."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.calculators import PairwisePotentialCalculator
from repro.chem import Molecule
from repro.frag import FragmentedSystem
from repro.md import (
    AsyncCoordinator,
    Checkpoint,
    CheckpointError,
    LangevinThermostat,
    Trajectory,
    atomic_savez,
    load_restart,
    read_checkpoint,
    read_checkpoint_with_fallback,
    read_trajectory_xyz,
    rotation_path,
    run_aimd,
    run_parallel,
    run_serial,
    save_restart,
    write_checkpoint,
    write_trajectory_xyz,
)
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import water_cluster

BIG = 1.0e6
SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(scope="module")
def surrogate():
    return PairwisePotentialCalculator()


def _full_checkpoint(mol) -> Checkpoint:
    rng = np.random.default_rng(0)
    return Checkpoint(
        step=4,
        time_fs=2.0,
        coords=mol.coords + 0.01,
        velocities=rng.normal(size=mol.coords.shape) * 1e-4,
        symbols=tuple(mol.symbols),
        charge=mol.charge,
        times_fs=np.array([0.0, 0.5, 1.0, 1.5, 2.0]),
        potential=rng.normal(size=5),
        kinetic=np.abs(rng.normal(size=5)),
        frame_coords=np.stack([mol.coords + 0.001 * i for i in range(5)]),
        frame_velocities=np.stack(
            [rng.normal(size=mol.coords.shape) for _ in range(5)]
        ),
        thermostat={"kind": "langevin", "rng": {"state": 123}},
        driver={"tasks_completed": 7, "retries": 1},
        reference=2,
    )


class TestCheckpointFormat:
    def test_round_trip_preserves_everything(self, tmp_path):
        mol = water_cluster(2, seed=1)
        ck = _full_checkpoint(mol)
        path = tmp_path / "ck.npz"
        write_checkpoint(path, ck)
        back = read_checkpoint(path, mol=mol)
        assert back.step == ck.step
        assert back.time_fs == ck.time_fs
        assert back.symbols == ck.symbols
        assert back.charge == ck.charge
        assert back.reference == 2
        assert back.thermostat == ck.thermostat
        assert back.driver == ck.driver
        np.testing.assert_array_equal(back.coords, ck.coords)
        np.testing.assert_array_equal(back.velocities, ck.velocities)
        np.testing.assert_array_equal(back.potential, ck.potential)
        np.testing.assert_array_equal(back.frame_coords, ck.frame_coords)
        np.testing.assert_array_equal(
            back.frame_velocities, ck.frame_velocities
        )

    def test_write_emits_tracer_event(self, tmp_path):
        from repro.trace import Tracer

        mol = water_cluster(1, seed=1)
        tracer = Tracer()
        write_checkpoint(tmp_path / "ck.npz", _full_checkpoint(mol),
                         tracer=tracer)
        assert any(e.get("name") == "checkpoint.write"
                   for e in tracer.events)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            read_checkpoint(tmp_path / "nope.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(path)

    def test_tampered_payload_fails_checksum(self, tmp_path):
        """Flipping payload bits must trip the checksum, not produce a
        silently-wrong trajectory."""
        mol = water_cluster(2, seed=1)
        path = tmp_path / "ck.npz"
        write_checkpoint(path, _full_checkpoint(mol))
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        tampered = np.array(arrays["coords"])
        tampered[0, 0] += 1e-9  # one ulp-scale bit flip
        arrays["coords"] = tampered
        np.savez(path, **arrays)  # keeps the stale checksum
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_missing_checksum_rejected(self, tmp_path):
        path = tmp_path / "ck.npz"
        np.savez(path, coords=np.zeros((3, 3)),
                 meta=np.array(json.dumps({"magic": "x"})))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        mol = water_cluster(1, seed=1)
        ck = _full_checkpoint(mol)
        ck.version = 999
        path = tmp_path / "ck.npz"
        write_checkpoint(path, ck)
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_mismatched_molecule_rejected(self, tmp_path):
        mol = water_cluster(1, seed=1)
        path = tmp_path / "ck.npz"
        write_checkpoint(path, _full_checkpoint(mol))
        other = Molecule(["N", "H", "H"], mol.coords)
        with pytest.raises(CheckpointError, match="different system"):
            read_checkpoint(path, mol=other)
        charged = Molecule(list(mol.symbols), mol.coords, charge=2)
        with pytest.raises(CheckpointError, match="different system"):
            read_checkpoint(path, mol=charged)


class TestAtomicWrite:
    def test_no_tmp_files_left_behind(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(4))
        atomic_savez(path, x=np.arange(8))  # overwrite in place
        with np.load(path) as data:
            assert data["x"].shape == (8,)
        assert os.listdir(tmp_path) == ["a.npz"]

    def test_failed_write_preserves_previous_file(self, tmp_path, monkeypatch):
        from repro.md import checkpoint as ckmod

        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(4))

        def boom(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(ckmod.os, "fsync", boom)
        with pytest.raises(OSError):
            atomic_savez(path, x=np.arange(8))
        monkeypatch.undo()
        with np.load(path) as data:  # old content intact, no torn file
            assert data["x"].shape == (4,)
        assert os.listdir(tmp_path) == ["a.npz"]


class TestRestartIO:
    def _traj(self, mol) -> Trajectory:
        traj = Trajectory()
        rng = np.random.default_rng(3)
        for i in range(3):
            traj.times_fs.append(0.5 * i)
            traj.potential.append(float(rng.normal()))
            traj.kinetic.append(float(abs(rng.normal())))
            traj.coords.append(mol.coords + 0.01 * i)
            traj.velocities.append(rng.normal(size=mol.coords.shape))
        return traj

    def test_round_trip_with_validation(self, tmp_path):
        mol = water_cluster(2, seed=2)
        traj = self._traj(mol)
        path = tmp_path / "restart.npz"
        save_restart(path, traj)
        coords, vel, t = load_restart(path, mol=mol)
        np.testing.assert_array_equal(coords, traj.coords[-1])
        np.testing.assert_array_equal(vel, traj.velocities[-1])
        assert t == traj.times_fs[-1]

    def test_bare_path_gets_npz_suffix(self, tmp_path):
        mol = water_cluster(1, seed=2)
        save_restart(tmp_path / "restart", self._traj(mol))
        assert (tmp_path / "restart.npz").exists()

    def test_wrong_molecule_rejected(self, tmp_path):
        path = tmp_path / "restart.npz"
        save_restart(path, self._traj(water_cluster(2, seed=2)))
        with pytest.raises(ValueError, match="different system"):
            load_restart(path, mol=water_cluster(3, seed=2))

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "restart.npz"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_restart(path)

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "restart.npz"
        np.savez(path, coords=np.zeros((3, 3)))
        with pytest.raises(ValueError, match="missing arrays"):
            load_restart(path)

    def test_xyz_trajectory_round_trip(self, tmp_path):
        mol = water_cluster(2, seed=2)
        traj = self._traj(mol)
        path = tmp_path / "traj.xyz"
        write_trajectory_xyz(traj, mol, path)
        mol2, traj2 = read_trajectory_xyz(path)
        assert tuple(mol2.symbols) == tuple(mol.symbols)
        np.testing.assert_allclose(traj2.times_fs, traj.times_fs)
        np.testing.assert_allclose(traj2.potential, traj.potential,
                                   atol=1e-12)
        np.testing.assert_allclose(traj2.kinetic, traj.kinetic, atol=1e-12)
        assert len(traj2.coords) == len(traj.coords)
        np.testing.assert_allclose(traj2.coords[-1], traj.coords[-1],
                                   atol=1e-5)


def _coordinator(system, nsteps, **kw):
    v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 200, seed=8)
    base = dict(
        nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
        velocities=v0, replan_interval=2, deterministic=True,
    )
    base.update(kw)
    return AsyncCoordinator(system, **base)


class TestSchedulerResume:
    @pytest.fixture(scope="class")
    def system(self):
        return FragmentedSystem.by_components(water_cluster(3, seed=2))

    def test_serial_resume_is_bitwise_exact(self, system, surrogate,
                                            tmp_path):
        full = _coordinator(system, nsteps=8)
        run_serial(full, surrogate)
        ck = tmp_path / "ck.npz"
        part = _coordinator(system, nsteps=4, checkpoint_path=ck,
                            checkpoint_every=4)
        run_serial(part, surrogate)
        ckpt = read_checkpoint(ck, mol=system.parent)
        assert ckpt.step == 4
        resumed = _coordinator(system, nsteps=8, resume=ckpt)
        run_serial(resumed, surrogate)
        t_f, pe_f, ke_f = full.trajectory_energies()
        t_r, pe_r, ke_r = resumed.trajectory_energies()
        np.testing.assert_array_equal(t_f, t_r)
        np.testing.assert_array_equal(pe_f, pe_r)
        np.testing.assert_array_equal(ke_f, ke_r)
        np.testing.assert_array_equal(full.coords, resumed.coords)
        np.testing.assert_array_equal(full.velocities, resumed.velocities)

    def test_parallel_resume_is_bitwise_exact(self, system, surrogate,
                                              tmp_path):
        full = _coordinator(system, nsteps=6)
        run_parallel(full, surrogate, nworkers=2)
        ck = tmp_path / "ck.npz"
        part = _coordinator(system, nsteps=4, checkpoint_path=ck,
                            checkpoint_every=2)
        run_parallel(part, surrogate, nworkers=2)
        ckpt = read_checkpoint(ck, mol=system.parent)
        assert ckpt.step == 4
        assert ckpt.driver is not None  # fault counters travel along
        resumed = _coordinator(system, nsteps=6, resume=ckpt)
        report = run_parallel(resumed, surrogate, nworkers=2)
        assert report.clean
        _, pe_f, ke_f = full.trajectory_energies()
        _, pe_r, ke_r = resumed.trajectory_energies()
        np.testing.assert_array_equal(pe_f, pe_r)
        np.testing.assert_array_equal(ke_f, ke_r)

    def test_resume_keeps_reference_monomer(self, system, surrogate,
                                            tmp_path):
        ck = tmp_path / "ck.npz"
        part = _coordinator(system, nsteps=4, checkpoint_path=ck,
                            checkpoint_every=4, reference=1)
        run_serial(part, surrogate)
        ckpt = read_checkpoint(ck)
        resumed = _coordinator(system, nsteps=6, resume=ckpt)
        assert resumed.reference == 1

    def test_misaligned_checkpoint_rejected(self, system):
        ckpt = Checkpoint(
            step=3, time_fs=1.5,
            coords=system.parent.coords.copy(),
            velocities=np.zeros_like(system.parent.coords),
            symbols=tuple(system.parent.symbols),
        )
        with pytest.raises(CheckpointError, match="replan_interval"):
            _coordinator(system, nsteps=8, resume=ckpt)

    def test_wrong_system_size_rejected(self, system):
        ckpt = Checkpoint(
            step=4, time_fs=2.0,
            coords=np.zeros((3, 3)), velocities=np.zeros((3, 3)),
            symbols=("O", "H", "H"),
        )
        with pytest.raises(CheckpointError, match="atoms"):
            _coordinator(system, nsteps=8, resume=ckpt)


class TestRunAimdResume:
    def test_thermostat_rng_round_trips(self, surrogate, tmp_path):
        """A Langevin (stochastic) run must resume bitwise: the RNG
        stream continues exactly where the checkpoint cut it."""
        mol = water_cluster(2, seed=5)
        kw = dict(nsteps=10, dt_fs=0.5, seed=1)
        ck = tmp_path / "ck.npz"
        full = run_aimd(
            mol, surrogate,
            thermostat=LangevinThermostat(300.0, friction_per_fs=0.05,
                                          seed=7),
            **kw,
        )
        run_aimd(
            mol, surrogate, nsteps=4, dt_fs=0.5, seed=1,
            thermostat=LangevinThermostat(300.0, friction_per_fs=0.05,
                                          seed=7),
            checkpoint_path=ck, checkpoint_every=4,
        )
        ckpt = read_checkpoint(ck, mol=mol)
        # a wrong-seed thermostat proves state comes from the checkpoint
        resumed = run_aimd(
            mol, surrogate,
            thermostat=LangevinThermostat(300.0, friction_per_fs=0.05,
                                          seed=999),
            resume=ckpt, **kw,
        )
        assert len(resumed.times_fs) == len(full.times_fs)
        np.testing.assert_array_equal(full.potential, resumed.potential)
        np.testing.assert_array_equal(full.kinetic, resumed.kinetic)
        np.testing.assert_array_equal(full.coords[-1], resumed.coords[-1])

    def test_fragmented_resume_bitwise(self, surrogate, tmp_path):
        mol = water_cluster(2, seed=5)
        system = FragmentedSystem.by_components(mol)
        kw = dict(
            dt_fs=0.5, r_dimer_bohr=BIG, r_trimer_bohr=BIG / 2,
            replan_interval=2, velocities=np.zeros_like(mol.coords),
        )
        full = run_aimd(system, surrogate, nsteps=8, **kw)
        ck = tmp_path / "ck.npz"
        run_aimd(system, surrogate, nsteps=4, checkpoint_path=ck,
                 checkpoint_every=4, **kw)
        resumed = run_aimd(system, surrogate, nsteps=8,
                           resume=read_checkpoint(ck, mol=mol), **kw)
        np.testing.assert_array_equal(full.potential, resumed.potential)
        np.testing.assert_array_equal(full.coords[-1], resumed.coords[-1])

    def test_frozen_plan_never_checkpoints(self, surrogate, tmp_path):
        """replan_interval=0 freezes the step-0 plan, which a resume
        cannot reconstruct — so no checkpoint may ever be written."""
        system = FragmentedSystem.by_components(water_cluster(2, seed=5))
        ck = tmp_path / "ck.npz"
        run_aimd(system, surrogate, nsteps=4, dt_fs=0.5,
                 r_dimer_bohr=BIG, r_trimer_bohr=BIG / 2,
                 replan_interval=0, velocities=np.zeros((6, 3)),
                 checkpoint_path=ck, checkpoint_every=2)
        assert not ck.exists()


_KILL_SCRIPT = """
import os, signal, sys
import numpy as np
from repro.calculators import PairwisePotentialCalculator
from repro.md import run_aimd
from repro.systems import water_cluster

class KillAfter:
    def __init__(self, inner, ncalls):
        self.inner, self.ncalls, self.calls = inner, ncalls, 0
    def energy_gradient(self, mol):
        self.calls += 1
        if self.calls > self.ncalls:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.energy_gradient(mol)

mol = water_cluster(2, seed=5)
run_aimd(mol, KillAfter(PairwisePotentialCalculator(), 7),
         nsteps=10, dt_fs=0.5, seed=1,
         checkpoint_path=sys.argv[1], checkpoint_every=2)
raise SystemExit("should have been killed")
"""


class TestSigkillResume:
    def test_sigkill_mid_run_then_resume_matches_uninterrupted(
        self, surrogate, tmp_path
    ):
        """The acceptance criterion: SIGKILL the process mid-trajectory,
        resume from the latest checkpoint, and reproduce the
        uninterrupted run bitwise."""
        ck = tmp_path / "ck.npz"
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT, str(ck)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert ck.exists()

        mol = water_cluster(2, seed=5)
        ckpt = read_checkpoint(ck, mol=mol)
        assert 0 < ckpt.step < 10  # died mid-run with state on disk
        resumed = run_aimd(mol, surrogate, nsteps=10, dt_fs=0.5,
                           resume=ckpt)
        full = run_aimd(mol, surrogate, nsteps=10, dt_fs=0.5, seed=1)
        np.testing.assert_array_equal(full.potential, resumed.potential)
        np.testing.assert_array_equal(full.kinetic, resumed.kinetic)
        np.testing.assert_array_equal(full.coords[-1], resumed.coords[-1])
        np.testing.assert_array_equal(
            full.velocities[-1], resumed.velocities[-1]
        )


class TestCliResume:
    def test_cli_resume_reproduces_final_energy(self, tmp_path, capsys):
        from repro.chem.xyz import save_xyz
        from repro.cli import main

        mol = water_cluster(3, seed=4)
        xyz = tmp_path / "w3.xyz"
        save_xyz(mol, xyz)
        ck = tmp_path / "ck.npz"
        common = ["aimd", str(xyz), "--surrogate", "--dt", "0.5",
                  "--deterministic"]
        assert main(common + ["--steps", "8"]) == 0
        full_out = capsys.readouterr().out
        assert main(common + ["--steps", "4", "--checkpoint", str(ck),
                              "--checkpoint-every", "4"]) == 0
        capsys.readouterr()
        assert main(common + ["--steps", "8", "--resume", str(ck)]) == 0
        resumed_out = capsys.readouterr().out
        assert "resuming from" in resumed_out

        def final_energy(text):
            lines = [ln for ln in text.splitlines()
                     if ln.startswith("final total energy:")]
            assert lines, text
            return lines[-1]

        assert final_energy(full_out) == final_energy(resumed_out)


class TestRotationAndFallback:
    """keep-N rotation plus last-good fallback under every corruption
    mode the chaos engine injects (ISSUE satellite: corrupted-checkpoint
    coverage)."""

    def _write_generations(self, tmp_path, mol, steps, keep=3):
        path = tmp_path / "ck.npz"
        for s in steps:
            ck = _full_checkpoint(mol)
            ck.step = s
            write_checkpoint(path, ck, keep=keep)
        return path

    def test_rotation_chain_keeps_newest_n(self, tmp_path):
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2, 3, 4], keep=3)
        assert read_checkpoint(path).step == 4
        assert read_checkpoint(rotation_path(path, 1)).step == 3
        assert read_checkpoint(rotation_path(path, 2)).step == 2
        assert not rotation_path(path, 3).exists()  # oldest dropped

    def test_keep_one_leaves_no_rotations(self, tmp_path):
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2], keep=1)
        assert read_checkpoint(path).step == 2
        assert not rotation_path(path, 1).exists()

    def test_fallback_prefers_valid_primary(self, tmp_path):
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        ck, used = read_checkpoint_with_fallback(path, mol=mol)
        assert used == path and ck.step == 2

    @pytest.mark.parametrize("kind", ["ckpt_torn", "ckpt_bitflip"])
    def test_fallback_after_injected_corruption(self, tmp_path, kind):
        from repro.faults import corrupt_checkpoint
        from repro.trace import Tracer

        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        corrupt_checkpoint(path, kind, seed=3)
        with pytest.raises(CheckpointError):
            read_checkpoint(path, mol=mol)  # typed, never silent
        tracer = Tracer()
        ck, used = read_checkpoint_with_fallback(
            path, mol=mol, tracer=tracer
        )
        assert used == rotation_path(path, 1)
        assert ck.step == 1
        falls = [e for e in tracer.events if e.get("name") == "ckpt.fallback"]
        assert falls and str(path) in str(falls[0])

    def test_fallback_after_truncation_to_garbage(self, tmp_path):
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        path.write_bytes(path.read_bytes()[:40])
        ck, used = read_checkpoint_with_fallback(path, mol=mol)
        assert used == rotation_path(path, 1) and ck.step == 1

    def test_fallback_after_bad_version(self, tmp_path):
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        bad = _full_checkpoint(mol)
        bad.step = 9
        bad.version = 99
        write_checkpoint(path, bad)  # overwrites primary, keeps .1
        with pytest.raises(CheckpointError, match="format version"):
            read_checkpoint(path, mol=mol)
        ck, used = read_checkpoint_with_fallback(path, mol=mol)
        assert used == rotation_path(path, 1) and ck.step == 1

    def test_fallback_after_stale_checksum(self, tmp_path):
        """Payload edited without refreshing the checksum — the stale
        digest must fail verification and fall back."""
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["coords"] = np.array(arrays["coords"]) + 1.0
        atomic_savez(path, **arrays)  # keeps the old checksum array
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path, mol=mol)
        ck, used = read_checkpoint_with_fallback(path, mol=mol)
        assert used == rotation_path(path, 1) and ck.step == 1

    def test_missing_primary_falls_back(self, tmp_path):
        """Covers the instant between rotation and the new primary's
        atomic write."""
        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        os.unlink(path)
        ck, used = read_checkpoint_with_fallback(path, mol=mol)
        assert used == rotation_path(path, 1) and ck.step == 1

    def test_whole_chain_corrupt_enumerates_failures(self, tmp_path):
        from repro.faults import corrupt_checkpoint

        mol = water_cluster(2, seed=1)
        path = self._write_generations(tmp_path, mol, [1, 2])
        corrupt_checkpoint(path, "ckpt_torn", seed=0)
        corrupt_checkpoint(rotation_path(path, 1), "ckpt_bitflip", seed=0)
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            read_checkpoint_with_fallback(path, mol=mol)

    def test_fault_plan_corrupts_only_the_primary(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec
        from repro.trace import Tracer

        mol = water_cluster(2, seed=1)
        path = tmp_path / "ck.npz"
        plan = FaultPlan(seed=5, specs=[FaultSpec(kind="ckpt_torn", step=8)])
        tracer = Tracer()
        for s in [4, 8]:
            ck = _full_checkpoint(mol)
            ck.step = s
            write_checkpoint(path, ck, tracer=tracer, keep=2,
                             fault_plan=plan)
        assert any(e.get("name") == "fault.inject" for e in tracer.events)
        assert plan.audit_summary() == {"ckpt_torn": 1}
        with pytest.raises(CheckpointError):
            read_checkpoint(path, mol=mol)
        ck, used = read_checkpoint_with_fallback(path, mol=mol)
        assert used == rotation_path(path, 1) and ck.step == 4

    def test_corruption_is_seed_deterministic(self, tmp_path):
        from repro.faults import corrupt_checkpoint

        mol = water_cluster(2, seed=1)
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        for p in (a, b):
            write_checkpoint(p, _full_checkpoint(mol))
        da = corrupt_checkpoint(a, "ckpt_bitflip", seed=11)
        db = corrupt_checkpoint(b, "ckpt_bitflip", seed=11)
        assert da["offset"] == db["offset"] and da["bit"] == db["bit"]
        assert a.read_bytes() == b.read_bytes()
        assert corrupt_checkpoint(a, "ckpt_torn", seed=1)["cut"] != 0
