"""Command-line interface smoke and behavior tests."""

from __future__ import annotations

import pytest

from repro.chem.xyz import save_xyz
from repro.cli import build_parser, main
from repro.systems import water_cluster, water_monomer


@pytest.fixture()
def water_file(tmp_path):
    p = tmp_path / "water.xyz"
    save_xyz(water_monomer(), p)
    return str(p)


@pytest.fixture()
def cluster_file(tmp_path):
    p = tmp_path / "w3.xyz"
    save_xyz(water_cluster(3, seed=1), p)
    return str(p)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_basis_choices(self, water_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scf", water_file, "--basis", "cc-pvqz"])


class TestCommands:
    def test_scf(self, water_file, capsys):
        assert main(["scf", water_file]) == 0
        out = capsys.readouterr().out
        assert "E(SCF)" in out
        assert "-74.9" in out  # water/STO-3G ballpark

    def test_mp2(self, water_file, capsys):
        assert main(["mp2", water_file]) == 0
        out = capsys.readouterr().out
        assert "E(total)" in out

    def test_mp2_scs(self, water_file, capsys):
        assert main(["mp2", water_file, "--scs"]) == 0
        assert "SCS-MP2" in capsys.readouterr().out

    def test_grad(self, water_file, capsys):
        assert main(["grad", water_file]) == 0
        out = capsys.readouterr().out
        assert "gradient RMSD" in out

    def test_aimd_surrogate(self, cluster_file, capsys):
        rc = main([
            "aimd", cluster_file, "--surrogate", "--steps", "3",
            "--r-dimer", "30", "--r-trimer", "15", "--order", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "polymer calculations" in out
        assert "asynchronous" in out

    def test_aimd_sync_flag(self, cluster_file, capsys):
        rc = main([
            "aimd", cluster_file, "--surrogate", "--steps", "2",
            "--r-dimer", "30", "--r-trimer", "15", "--sync",
        ])
        assert rc == 0
        assert "synchronous" in capsys.readouterr().out

    def test_aimd_trace_writes_chrome_json(self, cluster_file, tmp_path,
                                           capsys):
        import json

        trace_file = tmp_path / "aimd_trace.json"
        rc = main([
            "aimd", cluster_file, "--surrogate", "--steps", "2",
            "--r-dimer", "30", "--r-trimer", "15", "--order", "2",
            "--trace", str(trace_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote chrome trace" in out
        assert "trace summary" in out
        doc = json.loads(trace_file.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        # scheduler, driver, and GEMM layers all show up in one trace
        assert "task.release" in names
        assert "task.exec" in names

    def test_aimd_parallel_workers(self, cluster_file, capsys):
        rc = main([
            "aimd", cluster_file, "--surrogate", "--steps", "2",
            "--r-dimer", "30", "--r-trimer", "15", "--order", "2",
            "--workers", "2",
        ])
        assert rc == 0
        assert "polymer calculations" in capsys.readouterr().out

    def test_project(self, capsys):
        rc = main(["project", "--molecules", "500", "--nodes", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PFLOP/s" in out
        assert "polymers/step" in out

    def test_opt_writes_output(self, tmp_path, capsys):
        from repro.chem import Molecule

        p = tmp_path / "h2.xyz"
        save_xyz(Molecule(["H", "H"], [[0, 0, 0], [0, 0, 1.6]]), p)
        out_file = tmp_path / "h2_opt.xyz"
        rc = main(["opt", str(p), "-o", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert "converged: True" in capsys.readouterr().out


class TestServeCommands:
    def test_submit_then_serve(self, tmp_path, capsys):
        specs = str(tmp_path / "specs.json")
        rc = main([
            "submit", specs, "--job-id", "a", "--system", "water", "-n", "3",
            "--steps", "4", "--deterministic", "--checkpoint-every", "2",
        ])
        assert rc == 0
        rc = main([
            "submit", specs, "--job-id", "b", "--system", "water", "-n", "2",
            "--steps", "4", "--weight", "2.0",
            "--thermostat", "local-langevin",
        ])
        assert rc == 0
        out_dir = tmp_path / "out"
        rc = main([
            "serve", specs, "--out", str(out_dir), "--workers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 2 job(s)" in out
        assert "a: completed" in out
        assert "b: completed" in out
        assert "final total energy:" in out
        assert (out_dir / "a" / "trajectory.xyz").exists()
        assert (out_dir / "b" / "trajectory.xyz").exists()

    def test_submit_rejects_duplicate_job_id(self, tmp_path, capsys):
        specs = str(tmp_path / "specs.json")
        assert main(["submit", specs, "--job-id", "a"]) == 0
        with pytest.raises(SystemExit, match="already in"):
            main(["submit", specs, "--job-id", "a"])

    def test_serve_trace_artifact(self, tmp_path, capsys):
        specs = str(tmp_path / "specs.json")
        main(["submit", specs, "--job-id", "t", "--steps", "3"])
        trace = tmp_path / "trace.json"
        rc = main([
            "serve", specs, "--out", str(tmp_path / "out"),
            "--trace", str(trace),
        ])
        assert rc == 0
        assert trace.exists()
        import json

        events = json.loads(trace.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        assert "serve.submit" in names
        assert "warm_layer" in names
