"""Per-tier MTS ``k`` ladder: dimers every ``k``, trimers every ``k_trimer``.

Covers the order-split identity (dimer tier + trimer tier == single slow
tier, exactly), ladder dynamics (bounded drift against the single-tier
run), parameter validation, and ladder checkpoint/resume bitwise
continuation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag.mbe import build_plan
from repro.md import read_checkpoint, run_aimd
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.md.mts import slow_tier_items, slow_tier_items_split
from repro.systems import glycine_fragmented

R_DIMER = 6.0 * BOHR_PER_ANGSTROM
R_TRIMER = 9.0 * BOHR_PER_ANGSTROM


@pytest.fixture(scope="module")
def glycine4():
    return glycine_fragmented(4)


@pytest.fixture(scope="module")
def v0(glycine4):
    return maxwell_boltzmann_velocities(
        glycine4.parent.masses_au, 300.0, seed=11
    )


def _run(system, v, **kw):
    base = dict(
        nsteps=16, dt_fs=0.25, r_dimer_bohr=R_DIMER,
        r_trimer_bohr=R_TRIMER, mbe_order=3, replan_interval=4,
        velocities=v.copy(),
    )
    base.update(kw)
    return run_aimd(system, PairwisePotentialCalculator(), **base)


class TestSplitIdentity:
    def test_split_sums_to_single_slow_tier(self, glycine4):
        """Regrouping the slow tier by originating MBE order is an
        identity on the coefficient map, not an approximation."""
        plan = build_plan(glycine4, R_DIMER, R_TRIMER, order=3)
        assert plan.trimers, "fixture must actually have trimers"
        merged: dict[tuple, float] = {}
        tier2, tier3 = slow_tier_items_split(plan, glycine4.nmonomers)
        for key, c in tier2 + tier3:
            merged[key] = merged.get(key, 0.0) + c
        single = dict(slow_tier_items(plan, glycine4.nmonomers))
        for key in set(single) | set(merged):
            assert merged.get(key, 0.0) == pytest.approx(
                single.get(key, 0.0), abs=1e-12
            ), key

    def test_tiers_are_order_pure(self, glycine4):
        plan = build_plan(glycine4, R_DIMER, R_TRIMER, order=3)
        tier2, tier3 = slow_tier_items_split(plan, glycine4.nmonomers)
        assert all(len(key) <= 2 for key, _ in tier2)
        assert all(len(key) <= 3 for key, _ in tier3)
        assert any(len(key) == 3 for key, _ in tier3)
        assert not any(len(key) == 3 for key, _ in tier2)


class TestLadderValidation:
    def test_non_multiple_k_trimer_rejected(self, glycine4, v0):
        with pytest.raises(ValueError, match="multiple"):
            _run(glycine4, v0, mts_k=2, mts_k_trimer=3)

    def test_smaller_k_trimer_rejected(self, glycine4, v0):
        with pytest.raises(ValueError, match="multiple"):
            _run(glycine4, v0, mts_k=4, mts_k_trimer=2)

    def test_ladder_with_extrapolation_rejected(self, glycine4, v0):
        with pytest.raises(ValueError, match="impulse"):
            _run(
                glycine4, v0, mts_k=2, mts_k_trimer=4,
                mts_extrapolate=True,
            )


class TestLadderDynamics:
    def test_equal_k_takes_single_tier_path(self, glycine4, v0):
        """mts_k_trimer == mts_k must be bitwise the single-ladder run
        (it is documented to take the exact same code path)."""
        a = _run(glycine4, v0, mts_k=2)
        b = _run(glycine4, v0, mts_k=2, mts_k_trimer=2)
        np.testing.assert_array_equal(
            np.asarray(a.total), np.asarray(b.total)
        )

    def test_ladder_tracks_single_tier_run(self, glycine4, v0):
        """Stretching only the trimer tier must stay close to the
        k-uniform MTS run: the trimer corrections are the smallest
        contributions, which is the whole point of the ladder."""
        uniform = _run(glycine4, v0, mts_k=2)
        ladder = _run(glycine4, v0, mts_k=2, mts_k_trimer=4)
        # compare at the common outer boundaries, where both runs hold
        # freshly evaluated slow tiers
        e_u = np.asarray(uniform.total)[::4]
        e_l = np.asarray(ladder.total)[::4]
        scale = max(abs(float(e_u[0])), 1e-12)
        assert np.abs(e_l - e_u).max() / scale < 5e-2

    def test_ladder_energy_drift_bounded(self, glycine4, v0):
        ladder = _run(glycine4, v0, mts_k=2, mts_k_trimer=4)
        assert abs(ladder.energy_drift()) < 1e-3


class TestLadderCheckpoint:
    def test_resume_is_bitwise(self, glycine4, v0, tmp_path):
        ck = tmp_path / "ck.npz"
        full = _run(
            glycine4, v0, mts_k=2, mts_k_trimer=4,
            checkpoint_path=ck, checkpoint_every=8,
        )
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        resumed = _run(
            glycine4, v0, mts_k=2, mts_k_trimer=4, resume=ckpt,
        )
        np.testing.assert_array_equal(
            np.asarray(full.total), np.asarray(resumed.total)
        )

    def test_resume_requires_matching_ladder(self, glycine4, v0, tmp_path):
        from repro.md import CheckpointError

        ck = tmp_path / "ck.npz"
        _run(
            glycine4, v0, mts_k=2, mts_k_trimer=4,
            checkpoint_path=ck, checkpoint_every=8,
        )
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        with pytest.raises(CheckpointError, match="k_trimer"):
            _run(glycine4, v0, mts_k=2, resume=ckpt)
        with pytest.raises(CheckpointError, match="k_trimer"):
            _run(glycine4, v0, mts_k=2, mts_k_trimer=8, resume=ckpt)
