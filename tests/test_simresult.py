"""SimResult/aggregate-result metrics and simulator bookkeeping."""

from __future__ import annotations

import pytest

from repro.cluster import (
    FRONTIER,
    PERLMUTTER,
    AggregateResult,
    ClusterSimulator,
    SimResult,
    simulate_aimd,
)
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.systems import water_cluster


def _result(**kw):
    base = dict(
        machine="Frontier", nodes=2, nworkers=16, total_time_s=10.0,
        step_finish_s={0: 3.0, 1: 7.0, 2: 10.0}, counted_flops=1.0e15,
        busy_time_s=120.0, tasks=30,
    )
    base.update(kw)
    return SimResult(**base)


class TestSimResult:
    def test_nevals(self):
        assert _result().nevals == 3

    def test_time_per_step_is_throughput(self):
        r = _result()
        assert r.time_per_step() == pytest.approx(10.0 / 3.0)

    def test_flop_rate(self):
        r = _result()
        assert r.flop_rate_pflops == pytest.approx(0.1)

    def test_utilization(self):
        r = _result()
        assert r.worker_utilization == pytest.approx(120.0 / 160.0)

    def test_single_eval(self):
        r = _result(step_finish_s={0: 10.0})
        assert r.time_per_step() == pytest.approx(10.0)


class TestAggregateResult:
    def test_fraction_of_peak(self):
        r = AggregateResult(
            machine="Frontier", nodes=9408, nworkers=10, nsteps=3,
            time_per_step_s=100.0,
            counted_flops_per_step=FRONTIER.peak_pflops() * 1e15 * 100.0 * 0.5,
        )
        assert r.fraction_of_peak(FRONTIER) == pytest.approx(0.5)


class TestSimulatorBookkeeping:
    def test_counts_match_coordinator(self):
        mol = water_cluster(4, seed=10)
        fs = FragmentedSystem.by_components(mol)
        r = simulate_aimd(
            fs, PERLMUTTER, 1, nsteps=2, r_dimer_bohr=1e9,
            r_trimer_bohr=None, mbe_order=2,
        )
        # 4 monomers + 6 dimers per step, 3 eval steps
        assert r.tasks == 10 * 3
        assert len(r.step_finish_s) == 3
        assert r.total_time_s > 0
        assert 0 < r.worker_utilization <= 1

    def test_step_finish_monotone(self):
        mol = water_cluster(5, seed=11)
        fs = FragmentedSystem.by_components(mol)
        r = simulate_aimd(
            fs, FRONTIER, 1, nsteps=3,
            r_dimer_bohr=12 * BOHR_PER_ANGSTROM,
            r_trimer_bohr=7 * BOHR_PER_ANGSTROM, mbe_order=3,
        )
        times = [r.step_finish_s[s] for s in sorted(r.step_finish_s)]
        assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))

    def test_gcds_per_worker_reduces_workers(self):
        sim1 = ClusterSimulator(FRONTIER, 4, gcds_per_worker=1)
        sim4 = ClusterSimulator(FRONTIER, 4, gcds_per_worker=4)
        assert sim4.nworkers == sim1.nworkers // 4


class TestEnergyToSolution:
    def test_frontier_more_efficient_than_perlmutter(self):
        """Paper Sec. VII-C: Frontier 53 GFLOP/J vs Perlmutter 27 — the
        same workload costs roughly half the energy on Frontier."""
        from repro.cluster import PAPER_CALIBRATED, simulate_workload, urea_workload

        stats = urea_workload(400, r_dimer_angstrom=12.0, r_trimer_angstrom=12.0)
        rf = simulate_workload(stats, FRONTIER, 8, cost_model=PAPER_CALIBRATED)
        rp = simulate_workload(stats, PERLMUTTER, 8, cost_model=PAPER_CALIBRATED)
        ef = rf.energy_megajoules_per_step(FRONTIER)
        ep = rp.energy_megajoules_per_step(PERLMUTTER)
        assert ef < ep
        assert ep / ef == pytest.approx(53.0 / 27.0, rel=0.05)

    def test_simresult_energy(self):
        r = _result(counted_flops=53.0e9 * 1.0e6)  # exactly 1 MJ on Frontier
        assert r.energy_megajoules(FRONTIER) == pytest.approx(1.0)
