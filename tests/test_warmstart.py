"""Cross-step SCF warm starts: dm0 seeding, GuessCache, incremental replan."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.basis.basisset import BasisSet
from repro.calculators import GuessCache, RIHFCalculator
from repro.frag import FragmentedSystem, build_plan
from repro.frag.mbe import update_plan
from repro.integrals import overlap
from repro.md.aimd import run_aimd
from repro.md.scheduler import AsyncCoordinator, run_serial
from repro.scf import rhf
from repro.scf.recovery import rhf_with_recovery
from repro.systems import water_cluster, water_monomer
from repro.trace import Tracer


# --------------------------------------------------------------------------
# dm0 seeding in the SCF core
# --------------------------------------------------------------------------

class TestDm0:
    def test_warm_start_matches_cold(self):
        mol = water_monomer()
        ref = rhf(mol, "sto-3g", ri=True)
        c = mol.coords.copy()
        c[0, 2] += 0.02
        moved = mol.with_coords(c)
        cold = rhf(moved, "sto-3g", ri=True)
        warm = rhf(moved, "sto-3g", ri=True, dm0=ref.D)
        assert warm.warm_started
        assert not cold.warm_started
        assert warm.energy == pytest.approx(cold.energy, abs=1e-8)
        assert warm.niter < cold.niter
        assert warm.n_iter == warm.niter  # alias

    def test_wrong_shape_discarded(self):
        mol = water_monomer()
        res = rhf(mol, "sto-3g", ri=True, dm0=np.eye(3))
        assert not res.warm_started

    def test_nonfinite_discarded(self):
        mol = water_monomer()
        bs = BasisSet.build(mol, "sto-3g")
        bad = np.full((bs.nbf, bs.nbf), np.nan)
        res = rhf(mol, "sto-3g", ri=True, dm0=bad)
        assert not res.warm_started

    def test_wrong_electron_count_discarded(self):
        mol = water_monomer()
        ref = rhf(mol, "sto-3g", ri=True)
        res = rhf(mol, "sto-3g", ri=True, dm0=3.0 * ref.D)
        assert not res.warm_started
        assert res.energy == pytest.approx(ref.energy, abs=1e-9)


class TestRecoveryColdStartRung:
    def test_bad_warm_start_falls_back_to_cold_guess(self):
        """A poisoned density that passes validation costs one extra
        solve: the cascade's first rung drops dm0 and re-solves cold."""
        mol = water_monomer()
        bs = BasisSet.build(mol, "sto-3g")
        S = overlap(bs)
        rng = np.random.default_rng(7)
        g = np.abs(rng.normal(size=(bs.nbf, bs.nbf)))
        g = g + g.T
        # scale to the correct electron count so rhf accepts it
        g *= mol.nelectrons / float(np.sum(g * S))
        cold = rhf(mol, "sto-3g", ri=True)
        # an iteration budget the cold guess meets but the garbage
        # guess does not, forcing the cascade to escalate
        budget = cold.niter + 2
        from repro.scf.rhf import SCFConvergenceError

        with pytest.raises(SCFConvergenceError):
            rhf(mol, "sto-3g", ri=True, dm0=g, max_iter=budget)
        res = rhf_with_recovery(mol, "sto-3g", ri=True, dm0=g,
                                max_iter=budget)
        assert res.recovery[0] == "cold-start"
        assert res.energy == pytest.approx(cold.energy, abs=1e-9)

    def test_good_warm_start_no_recovery(self):
        mol = water_monomer()
        ref = rhf(mol, "sto-3g", ri=True)
        res = rhf_with_recovery(mol, "sto-3g", ri=True, dm0=ref.D)
        assert res.recovery == ()
        assert res.warm_started


# --------------------------------------------------------------------------
# GuessCache semantics
# --------------------------------------------------------------------------

class TestGuessCache:
    def test_hit_after_put(self):
        cache = GuessCache()
        D = np.eye(4)
        assert cache.get((0,), natoms=3) is None
        cache.put((0,), D, natoms=3)
        out = cache.get((0,), natoms=3)
        assert out is D
        assert cache.hits == 1 and cache.misses == 1

    def test_natoms_mismatch_invalidates(self):
        cache = GuessCache()
        cache.put((0, 1), np.eye(4), natoms=6)
        assert cache.get((0, 1), natoms=7) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_lru_byte_budget_eviction(self):
        D = np.eye(8)  # 512 bytes
        cache = GuessCache(max_bytes=3 * D.nbytes)
        for m in range(4):
            cache.put((m,), D.copy(), natoms=3)
        assert cache.evictions == 1
        assert len(cache) == 3
        assert cache.nbytes == 3 * D.nbytes
        # (0,) was least recently used and must be gone
        assert cache.get((0,), natoms=3) is None
        assert cache.get((3,), natoms=3) is not None

    def test_lru_order_follows_access(self):
        D = np.eye(8)
        cache = GuessCache(max_bytes=2 * D.nbytes)
        cache.put((0,), D.copy(), natoms=3)
        cache.put((1,), D.copy(), natoms=3)
        cache.get((0,), natoms=3)  # refresh (0,)
        cache.put((2,), D.copy(), natoms=3)  # evicts (1,)
        assert cache.get((1,), natoms=3) is None
        assert cache.get((0,), natoms=3) is not None

    def test_disabled_is_statistics_only(self):
        cache = GuessCache(enabled=False)
        cache.put((0,), np.eye(4), natoms=3)
        assert len(cache) == 0 and cache.nbytes == 0
        assert cache.get((0,), natoms=3) is None
        cache.record(hit=False, n_iter=9)
        assert cache.misses == 1
        assert cache.stats()["iters_cold"] == 9

    def test_history_extrapolation(self):
        cache = GuessCache()
        d0, d1, d2 = np.eye(4), 2 * np.eye(4), 4 * np.eye(4)
        cache.put((0,), d0, natoms=3)
        assert cache.get((0,), natoms=3) is d0
        cache.put((0,), d1, natoms=3)
        np.testing.assert_allclose(
            cache.get((0,), natoms=3), 2 * d1 - d0
        )
        cache.put((0,), d2, natoms=3)
        np.testing.assert_allclose(
            cache.get((0,), natoms=3), 3 * d2 - 3 * d1 + d0
        )

    def test_history_depth_bounded(self):
        cache = GuessCache(history=1)
        D = np.eye(4)
        cache.put((0,), D, natoms=3)
        cache.put((0,), 2 * D, natoms=3)
        # depth 1: plain last-density reuse, bytes stay bounded
        np.testing.assert_allclose(cache.get((0,), natoms=3), 2 * D)
        assert cache.nbytes == D.nbytes
        with pytest.raises(ValueError, match="history"):
            GuessCache(history=0)

    def test_put_natoms_change_resets_history(self):
        cache = GuessCache()
        cache.put((0,), np.eye(4), natoms=3)
        cache.put((0,), 2 * np.eye(4), natoms=5)  # fragment changed
        assert cache.invalidations == 1
        np.testing.assert_allclose(
            cache.get((0,), natoms=5), 2 * np.eye(4)
        )

    def test_stats_snapshot(self):
        cache = GuessCache()
        cache.put((0,), np.eye(2), natoms=1)
        cache.get((0,), natoms=1)
        cache.record(hit=True, n_iter=4)
        s = cache.stats()
        assert s["hits"] == 1 and s["entries"] == 1
        assert s["iters_warm"] == 4


# --------------------------------------------------------------------------
# fragment identity tags
# --------------------------------------------------------------------------

class TestFragKey:
    def test_fragment_molecule_sets_key(self):
        fs = FragmentedSystem.by_components(water_cluster(3, seed=0))
        mol, _, _ = fs.fragment_molecule((0, 2))
        assert mol.frag_key == (0, 2)

    def test_frag_key_survives_pickling(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        mol, _, _ = fs.fragment_molecule((1,))
        clone = pickle.loads(pickle.dumps(mol))
        assert clone.frag_key == (1,)

    def test_plain_molecule_has_no_key(self):
        assert water_monomer().frag_key is None


# --------------------------------------------------------------------------
# incremental replanning
# --------------------------------------------------------------------------

class TestUpdatePlan:
    @pytest.fixture(scope="class")
    def w6(self):
        return FragmentedSystem.by_components(water_cluster(6, seed=2))

    def _cutoffs(self, fs):
        # mid-range cutoffs so perturbations actually move polymers
        # across the boundary
        cents = fs.centroids()
        d = np.linalg.norm(cents[:, None] - cents[None, :], axis=-1)
        r_d = float(np.median(d[d > 0]))
        return r_d, 1.1 * r_d

    @pytest.mark.parametrize("order", [2, 3])
    def test_matches_fresh_build(self, w6, order):
        r_d, r_t = self._cutoffs(w6)
        prev = build_plan(w6, r_d, r_t, order=order)
        rng = np.random.default_rng(5)
        for trial in range(4):
            coords = w6.parent.coords + 0.6 * rng.normal(
                size=w6.parent.coords.shape
            )
            fresh = build_plan(w6, r_d, r_t, order=order, coords=coords)
            inc, diff = update_plan(
                w6, prev, r_d, r_t, order=order, coords=coords
            )
            assert inc.coefficients == fresh.coefficients
            assert inc.dimers == fresh.dimers
            assert inc.trimers == fresh.trimers
            assert diff.reused + len(diff.added) == len(fresh.fragments)
            assert set(diff.removed).isdisjoint(fresh.fragments)
            prev = inc

    def test_no_motion_no_diff(self, w6):
        r_d, r_t = self._cutoffs(w6)
        prev = build_plan(w6, r_d, r_t, order=3)
        inc, diff = update_plan(w6, prev, r_d, r_t, order=3)
        assert diff.nchanged == 0
        assert diff.reused == len(prev.fragments)
        assert inc.coefficients == prev.coefficients

    def test_requires_trimer_cutoff(self, w6):
        prev = build_plan(w6, 5.0, 6.0, order=2)
        with pytest.raises(ValueError, match="trimer cutoff"):
            update_plan(w6, prev, 5.0, order=3)


# --------------------------------------------------------------------------
# MD integration: warm vs cold trajectories
# --------------------------------------------------------------------------

class TestAimdWarmStart:
    def test_warm_matches_cold_with_fewer_iterations(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=1))
        kwargs = dict(
            nsteps=3, dt_fs=0.5, temperature_k=50.0, seed=0,
            r_dimer_bohr=1.0e6, mbe_order=2, replan_interval=1,
        )
        # enabled=False counts iterations without ever serving a guess,
        # so the two runs are instrumented identically
        cold_calc = RIHFCalculator(guess_cache=GuessCache(enabled=False))
        cold = run_aimd(fs, cold_calc, warm_start=False, **kwargs)
        warm_calc = RIHFCalculator()
        warm = run_aimd(fs, warm_calc, warm_start=True, **kwargs)

        cache = warm_calc.guess_cache
        assert cache is not None and cache.hits > 0
        np.testing.assert_allclose(
            warm.potential, cold.potential, atol=1e-8
        )
        np.testing.assert_allclose(np.asarray(warm.total)[-1],
                                   np.asarray(cold.total)[-1], atol=1e-8)
        cold_iters = cold_calc.guess_cache.stats()["iters_cold"]
        warm_iters = cache.iters_warm + cache.iters_cold
        assert warm_iters < cold_iters

    def test_no_warm_start_leaves_calculator_untouched(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=1))
        calc = RIHFCalculator()
        run_aimd(fs, calc, nsteps=1, dt_fs=0.5, temperature_k=50.0,
                 r_dimer_bohr=1.0e6, mbe_order=2, warm_start=False)
        assert calc.guess_cache is None

    def test_caller_supplied_cache_respected(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=1))
        mine = GuessCache(max_bytes=1024)
        calc = RIHFCalculator(guess_cache=mine)
        run_aimd(fs, calc, nsteps=1, dt_fs=0.5, temperature_k=50.0,
                 r_dimer_bohr=1.0e6, mbe_order=2, warm_start=True)
        assert calc.guess_cache is mine


class TestSchedulerWarmStart:
    def _coordinator(self, fs, **kw):
        return AsyncCoordinator(
            fs, nsteps=2, dt_fs=0.5, r_dimer_bohr=1.0e6,
            mbe_order=2, temperature_k=50.0, seed=0,
            replan_interval=1, **kw,
        )

    def test_deterministic_disables_cache(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        assert self._coordinator(fs, deterministic=True).guess_cache is None
        assert self._coordinator(fs, warm_start=False).guess_cache is None
        assert self._coordinator(fs).guess_cache is not None

    def test_run_serial_populates_cache_and_replans_incrementally(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        coordinator = self._coordinator(fs)
        calc = RIHFCalculator()
        run_serial(coordinator, calc)
        assert calc.guess_cache is coordinator.guess_cache
        assert coordinator.guess_cache.hits > 0
        assert coordinator.replans_incremental >= 1
        assert coordinator.replan_reused > 0


# --------------------------------------------------------------------------
# tracer integration
# --------------------------------------------------------------------------

class TestWarmStartTracing:
    def test_instants_and_aggregation(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        mol, _, _ = fs.fragment_molecule((0,))
        tracer = Tracer()
        calc = RIHFCalculator(guess_cache=GuessCache(), tracer=tracer)
        calc.energy_gradient(mol)  # miss
        calc.energy_gradient(mol)  # hit (identical geometry)
        count, sums = tracer.aggregate_instants("scf.warm_start")
        assert count == 2
        assert sums["hit"] == 1
        assert sums["n_iter"] > 0

    def test_aggregate_ignores_non_numeric_args(self):
        tracer = Tracer()
        tracer.instant("x", label="abc", v=2)
        tracer.instant("x", label="def", v=3.5)
        count, sums = tracer.aggregate_instants("x")
        assert count == 2
        assert sums == {"v": 5.5}
