"""Calculator implementations: QM engines and the classical surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import (
    ConventionalHFCalculator,
    PairwisePotentialCalculator,
    RIHFCalculator,
    RIMP2Calculator,
)
from repro.systems import water_cluster, water_monomer


class TestQMCalculators:
    def test_rimp2_below_rihf(self):
        mol = water_monomer()
        e_hf, _ = RIHFCalculator(basis="sto-3g").energy_gradient(mol)
        e_mp2, _ = RIMP2Calculator(basis="sto-3g").energy_gradient(mol)
        assert e_mp2 < e_hf  # correlation lowers the energy

    def test_ri_close_to_conventional(self):
        mol = water_monomer()
        e_ri, g_ri = RIHFCalculator(basis="sto-3g").energy_gradient(mol)
        e_cv, g_cv = ConventionalHFCalculator(basis="sto-3g").energy_gradient(mol)
        assert abs(e_ri - e_cv) < 2e-3
        assert np.abs(g_ri - g_cv).max() < 5e-3

    def test_energy_shortcut_consistent(self):
        mol = water_monomer()
        calc = RIMP2Calculator(basis="sto-3g")
        e1, _ = calc.energy_gradient(mol)
        assert calc.energy(mol) == pytest.approx(e1, abs=1e-9)


class TestSurrogate:
    def test_gradient_fd(self):
        mol = water_cluster(3, seed=1)
        calc = PairwisePotentialCalculator()
        e0, g = calc.energy_gradient(mol)
        h = 1e-6
        for a, x in [(0, 0), (4, 1), (8, 2)]:
            cp = mol.coords.copy()
            cp[a, x] += h
            cm = mol.coords.copy()
            cm[a, x] -= h
            fd = (
                calc.energy_gradient(mol.with_coords(cp))[0]
                - calc.energy_gradient(mol.with_coords(cm))[0]
            ) / (2 * h)
            assert g[a, x] == pytest.approx(fd, rel=1e-5, abs=1e-10)

    def test_gradient_fd_with_three_body(self):
        mol = water_cluster(2, seed=2)
        calc = PairwisePotentialCalculator(at_strength=2.0)
        e0, g = calc.energy_gradient(mol)
        h = 1e-6
        cp = mol.coords.copy()
        cp[1, 1] += h
        cm = mol.coords.copy()
        cm[1, 1] -= h
        fd = (
            calc.energy_gradient(mol.with_coords(cp))[0]
            - calc.energy_gradient(mol.with_coords(cm))[0]
        ) / (2 * h)
        assert g[1, 1] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_translation_invariance(self):
        mol = water_cluster(3, seed=4)
        calc = PairwisePotentialCalculator()
        e1, g1 = calc.energy_gradient(mol)
        e2, g2 = calc.energy_gradient(mol.translated([2.0, -1.0, 0.5]))
        assert e2 == pytest.approx(e1, abs=1e-10)
        np.testing.assert_allclose(g1, g2, atol=1e-10)
        np.testing.assert_allclose(g1.sum(axis=0), 0.0, atol=1e-10)

    def test_pairwise_additivity_between_monomers(self):
        """The nonbonded part is strictly pairwise: E(AB) - E(A) - E(B)
        must equal E(AB) interaction for well-separated monomers and the
        three-monomer correction must vanish."""
        from repro.chem import Molecule

        calc = PairwisePotentialCalculator()
        waters = [water_monomer().translated([i * 8.0, 0, 0]) for i in range(3)]
        e = {}
        for key in [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]:
            mol = Molecule.concatenate([waters[i] for i in key])
            e[key], _ = calc.energy_gradient(mol)
        d3 = (
            e[(0, 1, 2)]
            - e[(0, 1)] - e[(0, 2)] - e[(1, 2)]
            + e[(0,)] + e[(1,)] + e[(2,)]
        )
        assert d3 == pytest.approx(0.0, abs=1e-12)

    def test_three_body_term_breaks_additivity(self):
        from repro.chem import Molecule

        calc = PairwisePotentialCalculator(at_strength=10.0)
        waters = [water_monomer().translated([i * 6.0, 0, 0]) for i in range(3)]
        e = {}
        for key in [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]:
            mol = Molecule.concatenate([waters[i] for i in key])
            e[key], _ = calc.energy_gradient(mol)
        d3 = (
            e[(0, 1, 2)]
            - e[(0, 1)] - e[(0, 2)] - e[(1, 2)]
            + e[(0,)] + e[(1,)] + e[(2,)]
        )
        assert abs(d3) > 1e-10


class TestSurrogateEnergyFastPath:
    def test_matches_energy_gradient(self):
        calc = PairwisePotentialCalculator(at_strength=2.0)
        mol = water_cluster(3, seed=5)
        e1, _ = calc.energy_gradient(mol)
        assert calc.energy(mol) == pytest.approx(e1, abs=1e-12)

    def test_no_three_body(self):
        calc = PairwisePotentialCalculator()
        mol = water_cluster(2, seed=3)
        assert calc.energy(mol) == pytest.approx(
            calc.energy_gradient(mol)[0], abs=1e-12
        )
