"""Integral-engine internals: batched tables, groups, W tensors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import BasisSet, Shell, auto_auxiliary
from repro.chem import Molecule
from repro.integrals.engine import (
    aux_group_data,
    comp_arrays,
    e_tables_batch,
    hermite_box,
    pair_data,
    r_tables_batch,
    single_data,
    w_deriv,
    w_tensor,
)
from repro.integrals.hermite import e_table, r_table


class TestBatchedTables:
    @pytest.mark.parametrize("i,j", [(0, 0), (1, 2), (2, 1), (3, 0)])
    def test_e_batch_matches_scalar(self, i, j):
        rng = np.random.default_rng(0)
        a = rng.uniform(0.2, 4.0, 5)
        b = rng.uniform(0.2, 4.0, 5)
        AB = np.array([0.7, -0.3, 1.2])
        E = e_tables_batch(i, j, AB, a, b)
        for n in range(5):
            for dim in range(3):
                ref = e_table(i, j, float(AB[dim]), float(a[n]), float(b[n]))
                np.testing.assert_allclose(E[n, dim], ref, atol=1e-13)

    def test_e_batch_single_gaussian_limit(self):
        # b = 0: E reduces to the single-center Hermite expansion,
        # independent of the nominal separation.
        a = np.array([1.3, 0.4])
        b = np.zeros(2)
        E1 = e_tables_batch(2, 0, np.zeros(3), a, b)
        E2 = e_tables_batch(2, 0, np.array([5.0, 0, 0]), a, b)
        np.testing.assert_allclose(E1, E2, atol=1e-14)

    @pytest.mark.parametrize("box", [(0, 0, 0), (2, 1, 0), (3, 3, 3)])
    def test_r_batch_matches_scalar(self, box):
        rng = np.random.default_rng(1)
        p = rng.uniform(0.3, 6.0, 4)
        PQ = rng.uniform(-2, 2, (4, 3))
        R = r_tables_batch(*box, p, PQ)
        for n in range(4):
            ref = r_table(*box, float(p[n]), PQ[n])
            np.testing.assert_allclose(R[n], ref, rtol=1e-11, atol=1e-14)

    def test_hermite_box_cover(self):
        box = hermite_box((2, 1, 0))
        assert box.shape == (3 * 2 * 1, 3)
        assert set(map(tuple, box)) == {
            (t, u, 0) for t in range(3) for u in range(2)
        }


class TestPairData:
    def test_composite_centers(self):
        sa = Shell(0, np.array([0.0, 0, 0]), np.array([2.0]), np.array([1.0]))
        sb = Shell(0, np.array([0.0, 0, 2.0]), np.array([1.0]), np.array([1.0]))
        pd = pair_data(sa, sb)
        # P = (aA + bB)/(a+b) = (0 + 2)/3 along z
        np.testing.assert_allclose(pd.P[0], [0, 0, 2.0 / 3.0])
        assert pd.p[0] == pytest.approx(3.0)

    def test_single_data_center(self):
        sh = Shell(1, np.array([1.0, 2, 3]), np.array([0.8]), np.array([1.0]))
        sd = single_data(sh)
        np.testing.assert_allclose(sd.P[0], [1, 2, 3])
        np.testing.assert_allclose(sd.b, 0.0)


class TestAuxGroups:
    def test_groups_cover_all_shells(self, water):
        aux = auto_auxiliary(water, "sto-3g")
        groups = aux_group_data(aux)
        total = sum(g.pd.nprim for g in groups)
        assert total == aux.nshells
        # offsets cover every basis function exactly once
        covered = set()
        for g in groups:
            nc = (g.l + 1) * (g.l + 2) // 2
            for off in g.offsets:
                covered.update(range(off, off + nc))
        assert covered == set(range(aux.nbf))

    def test_groups_sorted_by_l(self, water):
        aux = auto_auxiliary(water, "sto-3g")
        ls = [g.l for g in aux_group_data(aux)]
        assert ls == sorted(ls)

    def test_contracted_aux_rejected(self):
        sh = Shell(0, np.zeros(3), np.array([1.0, 0.3]), np.array([0.6, 0.5]))
        with pytest.raises(ValueError, match="single-primitive"):
            aux_group_data(BasisSet([sh]))


class TestWTensors:
    def test_w_tensor_overlap_consistency(self):
        """W at t=0 contracted with (pi/p)^{3/2} reproduces the overlap."""
        from repro.integrals import overlap

        mol = Molecule(["C", "H"], [[0, 0, 0], [0, 0, 2.0]])
        bs = BasisSet.build(mol, "sto-3g")
        S = overlap(bs)
        for ish, sha in enumerate(bs.shells):
            for jsh, shb in enumerate(bs.shells):
                pd = pair_data(sha, shb)
                ca, cb = comp_arrays(sha.l), comp_arrays(shb.l)
                W = w_tensor(pd, ca, cb, (0, 0, 0))[:, :, :, 0, 0, 0]
                pref = pd.cc * (np.pi / pd.p) ** 1.5
                blk = np.einsum("n,nab->ab", pref, W)
                blk = blk * np.outer(sha.comp_norms, shb.comp_norms)
                oa, ob = bs.offsets[ish], bs.offsets[jsh]
                np.testing.assert_allclose(
                    blk, S[oa : oa + sha.nfunc, ob : ob + shb.nfunc],
                    atol=1e-12,
                )

    def test_w_deriv_antisymmetry(self):
        """For an s-s pair, d/dA = -d/dB of the overlap kernel."""
        sa = Shell(0, np.array([0.0, 0, 0]), np.array([1.1]), np.array([1.0]))
        sb = Shell(0, np.array([0.5, -0.2, 1.0]), np.array([0.7]), np.array([1.0]))
        pd = pair_data(sa, sb, 1, 1)
        ca = cb = comp_arrays(0)
        for axis in range(3):
            dA = w_deriv(pd, ca, cb, (0, 0, 0), "bra", axis)
            dB = w_deriv(pd, ca, cb, (0, 0, 0), "ket", axis)
            np.testing.assert_allclose(dA, -dB, atol=1e-13)

    def test_w_deriv_invalid_side(self):
        sa = Shell(0, np.zeros(3), np.array([1.0]), np.array([1.0]))
        pd = pair_data(sa, sa, 1, 1)
        ca = comp_arrays(0)
        with pytest.raises(ValueError):
            w_deriv(pd, ca, ca, (0, 0, 0), "mid", 0)
