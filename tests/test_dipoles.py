"""Dipole integrals and SCF/MP2 relaxed-density properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import BasisSet, auto_auxiliary
from repro.integrals.moments import dipole_integrals, nuclear_dipole
from repro.mp2 import mp2_ri
from repro.properties import mp2_dipole, scf_dipole
from repro.scf import rhf


class TestDipoleIntegrals:
    def test_symmetric(self, water):
        bs = BasisSet.build(water, "sto-3g")
        M = dipole_integrals(bs)
        for x in range(3):
            np.testing.assert_allclose(M[x], M[x].T, atol=1e-12)

    def test_origin_shift_is_overlap(self, water):
        """M(origin O1) - M(origin O2) = (O2 - O1) * S."""
        from repro.integrals import overlap

        bs = BasisSet.build(water, "sto-3g")
        S = overlap(bs)
        o1 = np.zeros(3)
        o2 = np.array([0.3, -0.7, 1.1])
        M1 = dipole_integrals(bs, origin=o1)
        M2 = dipole_integrals(bs, origin=o2)
        for x in range(3):
            np.testing.assert_allclose(M1[x] - M2[x], (o2[x] - o1[x]) * S,
                                       atol=1e-11)

    def test_fd_against_field_energy(self, water):
        """<mu|x|nu> must equal the derivative of hcore-like matrix
        elements under a linear potential — checked via the SCF energy
        response instead (Hellmann-Feynman)."""
        bs = BasisSet.build(water, "sto-3g")
        M = dipole_integrals(bs)
        res = rhf(water, "sto-3g", ri=True)
        lam = 1e-5
        e_p = rhf(water, "sto-3g", ri=True, h_extra=lam * M[1]).energy
        e_m = rhf(water, "sto-3g", ri=True, h_extra=-lam * M[1]).energy
        fd = (e_p - e_m) / (2 * lam)
        assert fd == pytest.approx(float(np.sum(res.D * M[1])), abs=1e-7)

    def test_nuclear_dipole(self, water):
        nd = nuclear_dipole(water)
        z = water.atomic_numbers.astype(float)
        ref = (z[:, None] * water.coords).sum(axis=0)
        np.testing.assert_allclose(nd, ref)


class TestSCFDipole:
    def test_water_magnitude(self, water):
        res = rhf(water, "sto-3g", ri=True)
        d = scf_dipole(res)
        # STO-3G water HF dipole ~1.7 D
        assert 1.2 < d.magnitude_debye < 2.2

    def test_direction_along_symmetry_axis(self, water):
        res = rhf(water, "sto-3g", ri=True)
        d = scf_dipole(res)
        # water in the yz plane, C2v axis along z
        assert abs(d.dipole_au[0]) < 1e-8
        assert abs(d.dipole_au[1]) < 1e-8

    def test_neutral_origin_independent(self, water):
        res = rhf(water, "sto-3g", ri=True)
        d1 = scf_dipole(res).dipole_au
        d2 = scf_dipole(res, origin=np.array([1.0, 2.0, 3.0])).dipole_au
        np.testing.assert_allclose(d1, d2, atol=1e-9)


class TestMP2Dipole:
    def test_relaxed_density_hellmann_feynman(self, water):
        """dE_total/d(field) must equal Tr[D_relaxed V] — the sharpest
        test of the Z-vector response machinery, independent of the
        geometric gradient."""
        aux = auto_auxiliary(water, "sto-3g")
        res = rhf(water, "sto-3g", ri=True, aux=aux)
        d = mp2_dipole(res)
        bs = res.basis
        M = dipole_integrals(bs)
        lam = 1e-4
        V = M[2]

        def etot(scale):
            r = rhf(water, "sto-3g", ri=True, aux=aux, h_extra=scale * V)
            return r.energy + mp2_ri(r).e_corr

        fd = (etot(lam) - etot(-lam)) / (2 * lam)
        assert fd == pytest.approx(-d.electronic[2], abs=1e-7)

    def test_mp2_changes_dipole(self, water):
        res = rhf(water, "sto-3g", ri=True)
        d_hf = scf_dipole(res)
        d_mp2 = mp2_dipole(res)
        assert d_mp2.magnitude_au != pytest.approx(d_hf.magnitude_au, abs=1e-6)
        # correlation reduces the HF overestimation
        assert d_mp2.magnitude_au < d_hf.magnitude_au
