"""Counterpoise corrections, pair energies, and the GWH SCF guess."""

from __future__ import annotations
import numpy as np
import pytest
from repro.basis import BasisSet
from repro.constants import BOHR_PER_ANGSTROM
from repro.interaction import basis_with_ghosts, counterpoise_interaction
from repro.mp2 import mp2_ri, pair_energies
from repro.scf import rhf
from repro.systems import water_monomer


@pytest.fixture(scope="module")
def cp_result():
    a = water_monomer()
    b = water_monomer().translated(np.array([3.0, 0, 0]) * BOHR_PER_ANGSTROM)
    return counterpoise_interaction(a, b, "sto-3g")


class TestGhostBasis:
    def test_ghosts_enlarge_basis(self):
        a = water_monomer()
        b = water_monomer().translated(np.array([3.0, 0, 0]) * BOHR_PER_ANGSTROM)
        own = BasisSet.build(a, "sto-3g")
        gb = basis_with_ghosts(a, list(b.symbols), b.coords, "sto-3g")
        assert gb.nbf == 2 * own.nbf

    def test_ghost_energy_variational(self):
        """Adding ghost functions can only lower the monomer energy."""

        from repro.interaction import _aux_with_ghosts

        a = water_monomer()
        b = water_monomer().translated(np.array([3.0, 0, 0]) * BOHR_PER_ANGSTROM)
        e_own = rhf(a, "sto-3g", ri=True).energy
        bs = basis_with_ghosts(a, list(b.symbols), b.coords, "sto-3g")
        aux = _aux_with_ghosts(a, list(b.symbols), b.coords, "sto-3g")
        e_ghost = rhf(a, bs, ri=True, aux=aux).energy
        assert e_ghost < e_own + 1e-10

    def test_ghost_keeps_electron_count(self):
        a = water_monomer()
        b = water_monomer().translated(np.array([4.0, 0, 0]) * BOHR_PER_ANGSTROM)
        from repro.interaction import _aux_with_ghosts

        bs = basis_with_ghosts(a, list(b.symbols), b.coords, "sto-3g")
        aux = _aux_with_ghosts(a, list(b.symbols), b.coords, "sto-3g")
        res = rhf(a, bs, ri=True, aux=aux)
        assert res.nocc == 5  # only the real water's electrons


class TestCounterpoise:
    def test_bsse_negative(self, cp_result):
        # ghost functions lower the monomer references, so raw < CP
        assert cp_result.bsse < 0

    def test_bsse_magnitude_reasonable(self, cp_result):
        from repro.constants import KJMOL_PER_HARTREE

        assert 0.01 < -cp_result.bsse * KJMOL_PER_HARTREE < 50.0

    def test_far_dimer_interaction_vanishes(self):
        a = water_monomer()
        b = water_monomer().translated(
            np.array([40.0, 0, 0]) * BOHR_PER_ANGSTROM
        )
        r = counterpoise_interaction(a, b, "sto-3g")
        assert abs(r.raw) < 1e-4
        assert abs(r.counterpoise) < 1e-4


class TestRecoveryRouting:
    def test_counterpoise_routes_through_recovery_by_default(self, monkeypatch):
        """All five component solves must get the escalation ladder —
        ghost-augmented monomer bases are exactly where a bare solve
        occasionally stalls."""
        import repro.interaction as interaction

        calls = {"recovery": 0, "bare": 0}
        real_recovery = interaction.rhf_with_recovery
        real_rhf = interaction.rhf

        def counting_recovery(*args, **kwargs):
            calls["recovery"] += 1
            return real_recovery(*args, **kwargs)

        def counting_rhf(*args, **kwargs):
            calls["bare"] += 1
            return real_rhf(*args, **kwargs)

        monkeypatch.setattr(interaction, "rhf_with_recovery",
                            counting_recovery)
        monkeypatch.setattr(interaction, "rhf", counting_rhf)
        a = water_monomer()
        b = water_monomer().translated(
            np.array([3.5, 0, 0]) * BOHR_PER_ANGSTROM
        )
        counterpoise_interaction(a, b, "sto-3g")
        assert calls["recovery"] == 5
        assert calls["bare"] == 0

        calls["recovery"] = calls["bare"] = 0
        counterpoise_interaction(a, b, "sto-3g", recover=False)
        assert calls["recovery"] == 0
        assert calls["bare"] == 5


class TestPairEnergies:
    def test_sum_equals_correlation(self, water):
        res = rhf(water, "sto-3g", ri=True)
        pe = pair_energies(res)
        assert pe.sum() == pytest.approx(mp2_ri(res).e_corr, abs=1e-12)

    def test_symmetric_nonpositive_diagonal(self, water):
        res = rhf(water, "sto-3g", ri=True)
        pe = pair_energies(res)
        np.testing.assert_allclose(pe, pe.T, atol=1e-12)
        assert np.all(np.diag(pe) <= 1e-12)

    def test_scs_scaling(self, water):
        res = rhf(water, "sto-3g", ri=True)
        from repro.mp2.mp2 import SCS_OS, SCS_SS

        pe = pair_energies(res, c_os=SCS_OS, c_ss=SCS_SS)
        assert pe.sum() == pytest.approx(
            mp2_ri(res, c_os=SCS_OS, c_ss=SCS_SS).e_corr, abs=1e-12
        )


class TestSCFGuess:
    def test_gwh_same_energy_as_core(self, water):
        e_core = rhf(water, "sto-3g", ri=True, guess="core").energy
        e_gwh = rhf(water, "sto-3g", ri=True, guess="gwh").energy
        assert e_gwh == pytest.approx(e_core, abs=1e-10)

    def test_gwh_not_slower_on_bigger_fragments(self):
        from repro.systems import urea_molecule

        mol = urea_molecule()
        n_core = rhf(mol, "sto-3g", ri=True, guess="core").niter
        n_gwh = rhf(mol, "sto-3g", ri=True, guess="gwh").niter
        assert n_gwh <= n_core

    def test_unknown_guess_raises(self, water):
        with pytest.raises(ValueError, match="guess"):
            rhf(water, "sto-3g", ri=True, guess="sad")
