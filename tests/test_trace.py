"""Trace module: span/counter recording, chrome export, instrumentation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.cluster import PERLMUTTER, simulate_aimd
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.gemm import GemmAutoTuner, VARIANTS
from repro.md import AsyncCoordinator, run_serial
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import water_cluster
from repro.trace import Tracer

BIG = 1.0e6

#: keys every chrome trace event must carry, per phase type
REQUIRED = {"name", "ph", "ts", "pid", "tid"}


def _validate_chrome(doc: dict) -> None:
    """Assert the exported object is schema-valid chrome-trace JSON."""
    assert set(doc) >= {"traceEvents"}
    assert isinstance(doc["traceEvents"], list)
    for ev in doc["traceEvents"]:
        assert REQUIRED <= set(ev), f"missing keys in {ev}"
        assert ev["ph"] in {"X", "i", "C"}
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
        if ev["ph"] == "C":
            assert "value" in ev["args"]


class TestTracer:
    def test_span_context_manager(self):
        tr = Tracer()
        with tr.span("work", cat="test", answer=42):
            pass
        (ev,) = tr.events
        assert ev["ph"] == "X" and ev["name"] == "work"
        assert ev["args"]["answer"] == 42

    def test_virtual_clock(self):
        now = [0.0]
        tr = Tracer(clock=lambda: now[0], epoch=0.0)
        tr.complete("task", start_s=1.5, dur_s=0.5)
        now[0] = 3.0
        tr.instant("done")
        a, b = tr.events
        assert a["ts"] == pytest.approx(1.5e6)
        assert a["dur"] == pytest.approx(0.5e6)
        assert b["ts"] == pytest.approx(3.0e6)

    def test_counter_and_summary(self):
        tr = Tracer(clock=lambda: 0.0, epoch=0.0)
        for v in (1, 5, 3):
            tr.counter("depth", v)
        tr.instant("tick")
        rows = tr.summary()
        kinds = {(k, n) for k, n, *_ in rows}
        assert ("counter", "depth") in kinds
        assert ("instant", "tick") in kinds
        (crow,) = [r for r in rows if r[0] == "counter"]
        _, _, count, last, mean, peak = crow
        assert count == 3 and last == 3 and peak == 5
        assert mean == pytest.approx(3.0)

    def test_event_cap_drops_not_grows(self):
        tr = Tracer(max_events=5)
        for i in range(10):
            tr.instant(f"e{i}")
        assert len(tr.events) == 5
        assert tr.dropped == 5

    def test_write_chrome_roundtrip(self, tmp_path):
        tr = Tracer()
        with tr.span("a"):
            tr.instant("b")
        tr.counter("c", 7)
        path = tmp_path / "trace.json"
        tr.write_chrome(path)
        doc = json.loads(path.read_text())
        _validate_chrome(doc)
        assert len(doc["traceEvents"]) == 3

    def test_format_summary_is_table(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        text = tr.format_summary()
        assert "span" in text and "a" in text


class TestSchedulerInstrumentation:
    def test_serial_run_emits_full_event_set(self, tmp_path):
        system = FragmentedSystem.by_components(water_cluster(3, seed=2))
        tr = Tracer()
        v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 100, seed=1)
        co = AsyncCoordinator(
            system, nsteps=2, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
            velocities=v0, tracer=tr,
        )
        run_serial(co, PairwisePotentialCalculator())
        names = {ev["name"] for ev in tr.events}
        assert {"task.release", "task.complete", "task.exec",
                "step.complete", "scheduler.queue_depth",
                "scheduler.in_flight", "scheduler.step_skew"} <= names
        # one exec span per issued task
        execs = [ev for ev in tr.events if ev["name"] == "task.exec"]
        assert len(execs) == co.tasks_issued
        path = tmp_path / "run.json"
        tr.write_chrome(path)
        _validate_chrome(json.loads(path.read_text()))

    def test_untraced_run_unchanged(self):
        """tracer=None must leave the trajectory identical (guard-only)."""
        system = FragmentedSystem.by_components(water_cluster(3, seed=2))
        v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 100, seed=1)
        kw = dict(nsteps=3, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
                  velocities=v0)
        c1 = AsyncCoordinator(system, **kw)
        run_serial(c1, PairwisePotentialCalculator())
        c2 = AsyncCoordinator(system, tracer=Tracer(), **kw)
        run_serial(c2, PairwisePotentialCalculator())
        np.testing.assert_array_equal(
            c1.trajectory_energies()[1], c2.trajectory_energies()[1]
        )


class TestSimulatorTrace:
    def test_virtual_time_spans(self, tmp_path):
        system = FragmentedSystem.by_components(water_cluster(4, seed=5))
        res = simulate_aimd(
            system, PERLMUTTER, nodes=1, nsteps=2,
            r_dimer_bohr=8.0 * BOHR_PER_ANGSTROM, r_trimer_bohr=None,
            mbe_order=2, trace=True,
        )
        tr = res.tracer
        assert tr is not None
        spans = [ev for ev in tr.events if ev["ph"] == "X"]
        assert spans, "simulator must emit worker spans"
        # spans live on the virtual timeline, bounded by the makespan
        for ev in spans:
            assert 0 <= ev["ts"] <= res.total_time_s * 1e6 + 1e-6
            assert ev["name"] == "polymer.exec"
        path = tmp_path / "sim.json"
        tr.write_chrome(path)
        _validate_chrome(json.loads(path.read_text()))

    def test_untraced_sim_has_no_tracer(self):
        system = FragmentedSystem.by_components(water_cluster(2, seed=5))
        res = simulate_aimd(
            system, PERLMUTTER, nodes=1, nsteps=1,
            r_dimer_bohr=BIG, r_trimer_bohr=None, mbe_order=2,
        )
        assert res.tracer is None


class TestGemmTuneTrace:
    def test_decision_event_emitted(self):
        tr = Tracer()
        tuner = GemmAutoTuner(tracer=tr)
        A = np.eye(6)
        for _ in range(len(VARIANTS) * tuner.trials_per_variant):
            tuner.gemm(A, A)
        (ev,) = [e for e in tr.events if e["name"] == "gemm.autotune"]
        assert ev["args"]["shape"] == str((6, 6, 6))
        assert ev["args"]["variant"] in VARIANTS
