"""Basis-set construction, normalization, auxiliary generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import (
    BasisSet,
    Shell,
    auto_auxiliary,
    double_factorial,
    element_auxiliary_shells,
    element_shells,
    primitive_norm,
)
from repro.integrals import overlap


class TestShell:
    def test_contracted_normalization_s(self):
        sh = Shell(0, np.zeros(3), np.array([3.0, 0.5]), np.array([0.4, 0.6]))
        bs = BasisSet([sh])
        S = overlap(bs)
        assert S[0, 0] == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("l", [0, 1, 2])
    def test_every_component_normalized(self, l):
        sh = Shell(l, np.zeros(3), np.array([1.3, 0.3]), np.array([0.7, 0.5]))
        bs = BasisSet([sh])
        S = overlap(bs)
        np.testing.assert_allclose(np.diag(S), 1.0, atol=1e-11)

    def test_exps_coefs_length_mismatch(self):
        with pytest.raises(ValueError):
            Shell(0, np.zeros(3), np.array([1.0, 2.0]), np.array([1.0]))

    def test_at_relocates(self):
        sh = Shell(1, np.zeros(3), np.array([1.0]), np.array([1.0]))
        moved = sh.at(np.array([1.0, 2.0, 3.0]), atom=5)
        np.testing.assert_allclose(moved.center, [1, 2, 3])
        assert moved.atom == 5
        assert moved.l == 1

    def test_double_factorial(self):
        assert double_factorial(-1) == 1.0
        assert double_factorial(0) == 1.0
        assert double_factorial(5) == 15.0
        assert double_factorial(6) == 48.0

    def test_primitive_norm_normalizes_gaussian(self):
        # <g|g> = 1 for normalized s primitive: closed form check
        a = 0.8
        N = primitive_norm(a, 0)
        self_overlap = N * N * (np.pi / (2 * a)) ** 1.5
        assert self_overlap == pytest.approx(1.0, rel=1e-12)


class TestBasisData:
    def test_sto3g_counts(self):
        assert len(element_shells("H", "sto-3g")) == 1
        assert len(element_shells("C", "sto-3g")) == 3  # 1s, 2s, 2p

    def test_dz_counts(self):
        # H: two s; C: 1s + 2x(2s,2p)
        assert len(element_shells("H", "repro-dz")) == 2
        assert len(element_shells("C", "repro-dz")) == 5

    def test_dzp_adds_polarization(self):
        sh_h = element_shells("H", "repro-dzp")
        assert any(l == 1 for l, _, _ in sh_h)
        sh_c = element_shells("C", "repro-dzp")
        assert any(l == 2 for l, _, _ in sh_c)

    def test_unknown_basis_raises(self):
        with pytest.raises(KeyError):
            element_shells("C", "cc-pvqz")

    def test_unknown_element_raises(self):
        with pytest.raises(KeyError):
            element_shells("Fe", "sto-3g")


class TestBasisSet:
    def test_water_sto3g_size(self, water):
        bs = BasisSet.build(water, "sto-3g")
        assert bs.nbf == 7  # O: 1s 2s 2p(3) + 2 H
        assert bs.nshells == 5

    def test_water_dz_size(self, water):
        bs = BasisSet.build(water, "repro-dz")
        assert bs.nbf == 9 + 2 + 2  # O: 1+2+6, H: 2 each

    def test_function_atoms(self, water):
        bs = BasisSet.build(water, "sto-3g")
        atoms = bs.function_atoms()
        assert atoms.tolist() == [0, 0, 0, 0, 0, 1, 2]

    def test_offsets_consistent(self, water):
        bs = BasisSet.build(water, "repro-dzp")
        total = sum(sh.nfunc for sh in bs.shells)
        assert total == bs.nbf
        assert bs.offsets[0] == 0
        for i in range(1, bs.nshells):
            assert bs.offsets[i] == bs.offsets[i - 1] + bs.shells[i - 1].nfunc


class TestAuxiliary:
    def test_covers_product_momentum(self):
        shells = element_auxiliary_shells("C", "sto-3g")
        ls = {l for l, _ in shells}
        assert max(ls) == 2  # p x p products need d fitting functions

    def test_exponent_range_covers_products(self):
        shells = element_auxiliary_shells("O", "sto-3g")
        s_exps = [e for l, e in shells if l == 0]
        prim = element_shells("O", "sto-3g")
        max_prim = max(max(exps) for _, exps, _ in prim)
        min_prim = min(min(exps) for _, exps, _ in prim)
        assert max(s_exps) >= 2 * max_prim / 2.5  # within one ladder rung
        assert min(s_exps) <= 2 * min_prim * 1.0001

    def test_all_single_primitive(self, water):
        aux = auto_auxiliary(water, "sto-3g")
        assert all(sh.nprim == 1 for sh in aux.shells)

    def test_aux_larger_than_primary(self, water):
        bs = BasisSet.build(water, "sto-3g")
        aux = auto_auxiliary(water, "sto-3g")
        assert aux.nbf > bs.nbf

    def test_beta_controls_size(self, water):
        small = auto_auxiliary(water, "sto-3g", beta=3.5)
        big = auto_auxiliary(water, "sto-3g", beta=1.8)
        assert big.nbf > small.nbf


class TestTripleZeta:
    def test_counts(self):
        assert len(element_shells("H", "repro-tz")) == 3
        assert len(element_shells("C", "repro-tz")) == 7  # 1s + 3x(2s,2p)

    def test_tzp_polarization(self):
        assert any(l == 2 for l, _, _ in element_shells("O", "repro-tzp"))
        assert any(l == 1 for l, _, _ in element_shells("H", "repro-tzp"))

    def test_variational_ladder(self, water):
        from repro.scf import rhf

        e_dz = rhf(water, "repro-dz", ri=True).energy
        e_tz = rhf(water, "repro-tz", ri=True).energy
        assert e_tz < e_dz
