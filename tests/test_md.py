"""MD: integrators, NVE conservation, async-vs-sync equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator, RIMP2Calculator
from repro.frag import FragmentedSystem
from repro.md import (
    AsyncCoordinator,
    run_aimd,
    run_parallel,
    run_serial,
    verlet_step,
)
from repro.md.integrators import (
    instantaneous_temperature,
    kinetic_energy,
    maxwell_boltzmann_velocities,
)
from repro.systems import fibril_fragmented, water_cluster, water_dimer

BIG = 1.0e6


class TestIntegrators:
    def test_verlet_harmonic_oscillator(self):
        """1D harmonic oscillator: Verlet conserves energy and tracks the
        analytic period."""
        k, m = 1.0, 1.0
        coords = np.array([[1.0, 0.0, 0.0]])
        vel = np.zeros((1, 3))
        masses = np.array([m])

        def force_fn(c):
            return 0.5 * k * float(c[0, 0] ** 2), np.array([[-k * c[0, 0], 0, 0]])

        e, f = force_fn(coords)
        dt = 0.05
        xs = []
        for _ in range(2000):
            coords, vel, f, e = verlet_step(coords, vel, f, masses, dt, force_fn)
            xs.append(coords[0, 0])
        xs = np.array(xs)
        e_tot = e + 0.5 * m * float(vel[0, 0] ** 2)
        assert e_tot == pytest.approx(0.5, abs=1e-4)
        # period: zero crossings spaced by pi (omega = 1)
        crossings = np.nonzero(np.diff(np.sign(xs)))[0]
        period = 2 * np.mean(np.diff(crossings)) * dt
        assert period == pytest.approx(2 * np.pi, rel=1e-3)

    def test_mb_velocities_com_free(self):
        masses = np.array([16.0, 1.0, 1.0, 12.0]) * 1822.888
        v = maxwell_boltzmann_velocities(masses, 300.0, seed=1)
        p = (v * masses[:, None]).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-12)

    def test_mb_temperature_statistics(self):
        masses = np.ones(500) * 1822.888
        v = maxwell_boltzmann_velocities(masses, 250.0, seed=2)
        T = instantaneous_temperature(masses, v)
        assert T == pytest.approx(250.0, rel=0.1)

    def test_kinetic_energy_positive(self):
        masses = np.ones(3)
        v = np.ones((3, 3))
        assert kinetic_energy(masses, v) == pytest.approx(0.5 * 9)


@pytest.fixture(scope="module")
def w6_system():
    mol = water_cluster(6, seed=2)
    return FragmentedSystem.by_components(mol)


@pytest.fixture(scope="module")
def surrogate():
    return PairwisePotentialCalculator()


class TestSynchronousAIMD:
    def test_nve_conservation(self, w6_system, surrogate):
        traj = run_aimd(
            w6_system, surrogate, nsteps=60, dt_fs=0.5,
            r_dimer_bohr=BIG, mbe_order=2, temperature_k=150, seed=4,
        )
        tot = traj.total
        assert np.abs(tot - tot[0]).max() < 1e-3
        assert abs(traj.energy_drift()) < 1e-5

    def test_unfragmented_molecule_path(self, surrogate):
        mol = water_cluster(2, seed=0)
        traj = run_aimd(mol, surrogate, nsteps=10, dt_fs=0.5, temperature_k=100)
        assert len(traj.times_fs) == 11
        tot = traj.total
        assert np.abs(tot - tot[0]).max() < 1e-4

    def test_fragmented_matches_unfragmented(self, surrogate):
        """MBE2 with full cutoffs is exact for the pairwise surrogate, so
        the fragmented trajectory must equal the whole-system one."""
        mol = water_cluster(4, seed=6)
        fs = FragmentedSystem.by_components(mol)
        t1 = run_aimd(mol, surrogate, nsteps=8, dt_fs=0.5, temperature_k=120, seed=3)
        t2 = run_aimd(
            fs, surrogate, nsteps=8, dt_fs=0.5, r_dimer_bohr=BIG,
            mbe_order=2, temperature_k=120, seed=3,
        )
        np.testing.assert_allclose(t1.coords[-1], t2.coords[-1], atol=1e-9)
        np.testing.assert_allclose(t1.total, t2.total, atol=1e-9)

    def test_trajectory_metrics(self, w6_system, surrogate):
        traj = run_aimd(
            w6_system, surrogate, nsteps=5, dt_fs=0.5,
            r_dimer_bohr=BIG, mbe_order=2, temperature_k=50, seed=1,
        )
        assert len(traj.wall_times) == 5
        assert traj.energy_fluctuation() >= 0


class TestAsyncCoordinator:
    def _matched_pair(self, system, calc, nsteps=20, replan=5, sync=False, order=2):
        v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 150, seed=4)
        traj = run_aimd(
            system, calc, nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=BIG,
            r_trimer_bohr=BIG, mbe_order=order, velocities=v0,
        )
        co = AsyncCoordinator(
            system, nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=BIG,
            r_trimer_bohr=BIG, mbe_order=order, velocities=v0,
            replan_interval=replan, synchronous=sync,
        )
        run_serial(co, calc)
        return traj, co

    def test_async_reproduces_sync_trajectory(self, w6_system, surrogate):
        traj, co = self._matched_pair(w6_system, surrogate)
        t, pe, ke = co.trajectory_energies()
        assert len(t) == 21
        np.testing.assert_allclose(pe, traj.potential, atol=1e-10)
        np.testing.assert_allclose(ke, traj.kinetic, atol=1e-10)

    def test_sync_mode_also_matches(self, w6_system, surrogate):
        traj, co = self._matched_pair(w6_system, surrogate, sync=True)
        t, pe, ke = co.trajectory_energies()
        np.testing.assert_allclose(pe, traj.potential, atol=1e-10)

    def test_mbe3_async(self, surrogate):
        mol = water_cluster(4, seed=8)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator(at_strength=0.5)
        traj, co = self._matched_pair(fs, calc, nsteps=10, order=3)
        t, pe, ke = co.trajectory_energies()
        np.testing.assert_allclose(pe, traj.potential, atol=1e-9)

    def test_capped_system_async(self, surrogate):
        """Fibril with H-caps: async must respect cap dependencies and
        still match the synchronous reference."""
        fs = fibril_fragmented(nstrands=2, residues_per_strand=3)
        traj, co = self._matched_pair(fs, surrogate, nsteps=10, replan=3)
        t, pe, ke = co.trajectory_energies()
        np.testing.assert_allclose(pe, traj.potential, atol=1e-9)
        np.testing.assert_allclose(ke, traj.kinetic, atol=1e-9)

    def test_all_monomers_finish(self, w6_system, surrogate):
        _, co = self._matched_pair(w6_system, surrogate, nsteps=7)
        assert co.done()
        assert (co.monomer_time == 7).all()

    def test_tasks_each_computed_once(self, w6_system, surrogate):
        _, co = self._matched_pair(w6_system, surrogate, nsteps=5)
        # 6 monomers + 15 dimers per step, 6 evaluation steps (0..5)
        assert co.tasks_issued == (6 + 15) * 6

    def test_energy_conservation_async(self, w6_system, surrogate):
        _, co = self._matched_pair(w6_system, surrogate, nsteps=40)
        t, pe, ke = co.trajectory_energies()
        tot = pe + ke
        assert np.abs(tot - tot[0]).max() < 1e-3

    def test_parallel_driver_matches_serial(self, w6_system, surrogate):
        v0 = maxwell_boltzmann_velocities(w6_system.parent.masses_au, 150, seed=4)
        kw = dict(
            nsteps=6, dt_fs=0.5, r_dimer_bohr=BIG, r_trimer_bohr=BIG,
            mbe_order=2, velocities=v0, replan_interval=3,
        )
        c1 = AsyncCoordinator(w6_system, **kw)
        run_serial(c1, surrogate)
        c2 = AsyncCoordinator(w6_system, **kw)
        run_parallel(c2, surrogate, nworkers=3)
        _, pe1, ke1 = c1.trajectory_energies()
        _, pe2, ke2 = c2.trajectory_energies()
        np.testing.assert_allclose(pe1, pe2, atol=1e-10)
        np.testing.assert_allclose(ke1, ke2, atol=1e-10)

    def test_priority_orders_by_reference_distance(self, w6_system):
        co = AsyncCoordinator(
            w6_system, nsteps=1, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
            temperature_k=100,
        )
        d_prev = -1.0
        while co.has_ready_tasks():
            task = co.next_task()
            assert task.distance >= d_prev - 1e-12
            d_prev = task.distance

    def test_reference_is_extremity(self, w6_system):
        co = AsyncCoordinator(
            w6_system, nsteps=1, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
        )
        cents = w6_system.centroids()
        d = np.linalg.norm(cents - cents.mean(axis=0), axis=1)
        assert co.reference == int(np.argmax(d))


class TestQuantumNVE:
    @pytest.mark.slow
    def test_water_dimer_mbe2_conservation(self):
        """Real RI-MP2 forces: short NVE run on a water dimer, fragmented,
        must conserve total energy (paper Fig. 6 methodology)."""
        mol = water_dimer()
        fs = FragmentedSystem.by_components(mol)
        calc = RIMP2Calculator(basis="sto-3g")
        traj = run_aimd(
            fs, calc, nsteps=6, dt_fs=0.25, r_dimer_bohr=BIG,
            mbe_order=2, temperature_k=100, seed=5,
        )
        tot = traj.total
        # Verlet fluctuation at dt=0.25 fs; exact forces keep it bounded
        assert np.abs(tot - tot[0]).max() < 1.5e-4
