"""r-RESPA multiple-time-step integration across MBE tiers.

Covers the tier split's exactness, sync-driver dynamics and checkpoint
round-trips (including SIGKILL mid-outer-cycle), async-coordinator
parity with the sync driver, and the CLI flags.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag.mbe import build_plan, mbe_energy_gradient
from repro.md import (
    AsyncCoordinator,
    CheckpointError,
    SlowTierState,
    TieredMBEForces,
    read_checkpoint,
    run_aimd,
    run_serial,
    slow_tier_items,
)
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import glycine_fragmented, water_cluster

SRC = str(Path(__file__).resolve().parents[1] / "src")
R_DIMER = 6.0 * BOHR_PER_ANGSTROM


@pytest.fixture(scope="module")
def surrogate():
    return PairwisePotentialCalculator()


@pytest.fixture(scope="module")
def glycine4():
    return glycine_fragmented(4)


@pytest.fixture(scope="module")
def v0(glycine4):
    return maxwell_boltzmann_velocities(
        glycine4.parent.masses_au, 300.0, seed=7
    )


def _run(system, calc, v, **kw):
    base = dict(
        nsteps=16, dt_fs=0.25, r_dimer_bohr=R_DIMER, mbe_order=2,
        replan_interval=4, velocities=v.copy(),
    )
    base.update(kw)
    return run_aimd(system, calc, **base)


class TestTierSplit:
    def test_fast_plus_slow_is_exact_mbe(self, glycine4, surrogate):
        """The tier split must reproduce the full MBE bit-for-bit in
        exact arithmetic: fast (all monomers at +1) + slow (polymers at
        c, monomers at c_m - 1) == inclusion-exclusion assembly."""
        plan = build_plan(glycine4, R_DIMER, order=2)
        e_ref, g_ref = mbe_energy_gradient(glycine4, plan, surrogate)
        tiers = TieredMBEForces(glycine4, surrogate)
        tiers.plan = plan
        coords = glycine4.parent.coords
        e_f, g_f = tiers.fast(coords)
        e_s, g_s = tiers.slow(coords)
        assert e_f + e_s == pytest.approx(e_ref, abs=1e-12)
        np.testing.assert_allclose(g_f + g_s, g_ref, atol=1e-12)

    def test_monomer_solves_reused_at_boundaries(self, glycine4, surrogate):
        plan = build_plan(glycine4, R_DIMER, order=2)
        tiers = TieredMBEForces(glycine4, surrogate)
        tiers.plan = plan
        coords = glycine4.parent.coords
        tiers.fast(coords)
        tiers.slow(coords)
        n_mono_corrections = sum(
            1 for key, _ in slow_tier_items(plan, glycine4.nmonomers)
            if len(key) == 1
        )
        assert n_mono_corrections > 0
        assert tiers.monomer_reuses == n_mono_corrections

    def test_slow_before_plan_raises(self, glycine4, surrogate):
        tiers = TieredMBEForces(glycine4, surrogate)
        with pytest.raises(RuntimeError, match="plan"):
            tiers.slow(glycine4.parent.coords)


class TestSlowTierState:
    def test_held_estimate_is_constant(self):
        s = SlowTierState(k=4)
        f = np.ones((3, 3))
        s.push(0, f, -1.0)
        for step in (0, 1, 3):
            e, out = s.estimate(step)
            assert e == -1.0
            np.testing.assert_array_equal(out, f)

    def test_extrapolated_estimate_is_linear(self):
        s = SlowTierState(k=4, extrapolate=True)
        s.push(0, np.zeros((2, 3)), 0.0)
        s.push(4, np.ones((2, 3)), 4.0)
        e, f = s.estimate(6)
        assert e == pytest.approx(6.0)
        np.testing.assert_allclose(f, 1.5)
        # exact at the boundary itself regardless of history
        e, f = s.estimate(4)
        assert e == pytest.approx(4.0)
        np.testing.assert_allclose(f, 1.0)

    def test_state_roundtrip(self):
        s = SlowTierState(k=2, extrapolate=True)
        s.push(0, np.full((2, 3), 2.0), -0.5)
        s.push(2, np.full((2, 3), 3.0), -0.7)
        r = SlowTierState.from_state(
            s.state_dict(),
            s.force_arrays()["mts_slow_forces"],
            s.force_arrays()["mts_slow_forces_prev"],
        )
        assert r.step == 2 and r.prev_step == 0
        assert r.e_slow == -0.7 and r.e_slow_prev == -0.5
        np.testing.assert_array_equal(r.forces, s.forces)
        np.testing.assert_array_equal(r.forces_prev, s.forces_prev)

    def test_missing_forces_raise(self):
        meta = SlowTierState(k=2)
        meta.push(0, np.zeros((1, 3)), 0.0)
        with pytest.raises(ValueError, match="held forces"):
            SlowTierState.from_state(meta.state_dict(), None, None)


class TestSyncDriverMTS:
    def test_drift_comparable_to_baseline(self, glycine4, surrogate, v0):
        base = _run(glycine4, surrogate, v0)
        k4 = _run(glycine4, surrogate, v0, mts_k=4)
        d_base = abs(base.total[-1] - base.total[0])
        d_k4 = abs(k4.total[-1] - k4.total[0])
        assert d_k4 < 10 * max(d_base, 1e-7)
        # trajectories stay close over this short window
        dev = np.max(np.abs(k4.coords[-1] - base.coords[-1]))
        assert dev < 1e-2  # Bohr

    def test_extrapolate_mode_runs(self, glycine4, surrogate, v0):
        k4x = _run(glycine4, surrogate, v0, mts_k=4, mts_extrapolate=True)
        d = abs(k4x.total[-1] - k4x.total[0])
        assert d < 1e-3

    def test_requires_fragmented_system(self, surrogate):
        with pytest.raises(ValueError, match="FragmentedSystem"):
            run_aimd(water_cluster(2), surrogate, nsteps=2, dt_fs=0.5,
                     mts_k=2)

    @pytest.mark.parametrize("extrapolate", [False, True])
    def test_mid_cycle_checkpoint_resume_bitwise(
        self, glycine4, surrogate, v0, tmp_path, extrapolate
    ):
        """Resume from a checkpoint *inside* an outer cycle (step 6 is
        phase 2 of k=4) and reproduce the uninterrupted run bitwise —
        the held slow forces ride the checkpoint."""
        ck = tmp_path / "ck.npz"
        full = _run(glycine4, surrogate, v0, nsteps=12, mts_k=4,
                    mts_extrapolate=extrapolate, replan_interval=2)
        _run(glycine4, surrogate, v0, nsteps=6, mts_k=4,
             mts_extrapolate=extrapolate, replan_interval=2,
             checkpoint_path=ck, checkpoint_every=2)
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        assert ckpt.step == 6
        assert ckpt.mts is not None and ckpt.mts["k"] == 4
        assert ckpt.mts["step"] == 4  # held boundary, not the step
        resumed = _run(glycine4, surrogate, v0, nsteps=12, mts_k=4,
                       mts_extrapolate=extrapolate, replan_interval=2,
                       resume=ckpt)
        np.testing.assert_array_equal(full.potential, resumed.potential)
        np.testing.assert_array_equal(full.kinetic, resumed.kinetic)
        np.testing.assert_array_equal(full.coords[-1], resumed.coords[-1])
        np.testing.assert_array_equal(
            full.velocities[-1], resumed.velocities[-1]
        )

    def test_k_mismatch_raises(self, glycine4, surrogate, v0, tmp_path):
        ck = tmp_path / "ck.npz"
        _run(glycine4, surrogate, v0, nsteps=6, mts_k=4,
             checkpoint_path=ck, checkpoint_every=2)
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        with pytest.raises(CheckpointError, match="does not match"):
            _run(glycine4, surrogate, v0, nsteps=12, mts_k=2,
                 resume=ckpt)

    def test_mts_checkpoint_into_plain_run_raises(
        self, glycine4, surrogate, v0, tmp_path
    ):
        ck = tmp_path / "ck.npz"
        _run(glycine4, surrogate, v0, nsteps=6, mts_k=4,
             checkpoint_path=ck, checkpoint_every=2)
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        with pytest.raises(CheckpointError, match="mts"):
            _run(glycine4, surrogate, v0, nsteps=12, resume=ckpt)


_KILL_SCRIPT = """
import os, signal, sys
import numpy as np
from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.md import run_aimd
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import glycine_fragmented

class KillAfter:
    def __init__(self, inner, ncalls):
        self.inner, self.ncalls, self.calls = inner, ncalls, 0
    def energy_gradient(self, mol):
        self.calls += 1
        if self.calls > self.ncalls:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.energy_gradient(mol)

system = glycine_fragmented(4)
v0 = maxwell_boltzmann_velocities(system.parent.masses_au, 300.0, seed=7)
run_aimd(system, KillAfter(PairwisePotentialCalculator(), 60),
         nsteps=16, dt_fs=0.25, r_dimer_bohr=6.0 * BOHR_PER_ANGSTROM,
         mbe_order=2, replan_interval=2, velocities=v0, mts_k=4,
         checkpoint_path=sys.argv[1], checkpoint_every=2)
raise SystemExit("should have been killed")
"""


class TestSigkillResumeMTS:
    def test_sigkill_mid_outer_cycle_resume_bitwise(
        self, glycine4, surrogate, v0, tmp_path
    ):
        """The acceptance criterion: SIGKILL an MTS run mid-trajectory,
        resume from the latest checkpoint (which lands inside an outer
        cycle), and reproduce the uninterrupted run bitwise."""
        ck = tmp_path / "ck.npz"
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT, str(ck)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert ck.exists()
        ckpt = read_checkpoint(ck, mol=glycine4.parent)
        assert 0 < ckpt.step < 16
        assert ckpt.mts is not None
        resumed = _run(glycine4, surrogate, v0, mts_k=4,
                       replan_interval=2, resume=ckpt)
        full = _run(glycine4, surrogate, v0, mts_k=4, replan_interval=2)
        np.testing.assert_array_equal(full.potential, resumed.potential)
        np.testing.assert_array_equal(full.kinetic, resumed.kinetic)
        np.testing.assert_array_equal(full.coords[-1], resumed.coords[-1])


class TestCoordinatorMTS:
    def _coord(self, v, nsteps=16, resume=None, **kw):
        system = glycine_fragmented(4)
        c = AsyncCoordinator(
            system, nsteps=nsteps, dt_fs=0.25, r_dimer_bohr=R_DIMER,
            mbe_order=2, velocities=v.copy(), replan_interval=4,
            deterministic=True, warm_start=False, resume=resume, **kw)
        run_serial(c, PairwisePotentialCalculator())
        return c

    @pytest.mark.parametrize("extrapolate", [False, True])
    def test_matches_sync_driver(self, glycine4, surrogate, v0, extrapolate):
        """The coordinator's task-by-task tier split must integrate the
        same dynamics as the sync driver's closed-form split."""
        c = self._coord(v0, mts_k=4, mts_extrapolate=extrapolate)
        traj = _run(glycine4, surrogate, v0, mts_k=4,
                    mts_extrapolate=extrapolate)
        _, pe, ke = c.trajectory_energies()
        np.testing.assert_allclose(pe, traj.potential, atol=1e-12)
        np.testing.assert_allclose(ke, traj.kinetic, atol=1e-12)

    def test_k1_is_plain_path(self, v0):
        a = self._coord(v0)
        b = self._coord(v0, mts_k=1)
        _, pe_a, ke_a = a.trajectory_energies()
        _, pe_b, ke_b = b.trajectory_energies()
        np.testing.assert_array_equal(pe_a, pe_b)
        np.testing.assert_array_equal(ke_a, ke_b)
        assert not b.mts

    def test_inner_steps_skip_polymer_tasks(self, v0):
        k4 = self._coord(v0, mts_k=4)
        base = self._coord(v0)
        assert k4.mts_tasks_skipped > 0
        assert k4.tasks_issued < base.tasks_issued
        assert k4.mts_slow_evals == 16 // 4 + 1  # boundaries incl. step 0

    @pytest.mark.parametrize("extrapolate", [False, True])
    def test_deterministic_resume_bitwise(self, v0, tmp_path, extrapolate):
        ck = tmp_path / "ck.npz"
        full = self._coord(v0, mts_k=4, mts_extrapolate=extrapolate,
                           checkpoint_path=ck, checkpoint_every=4,
                           checkpoint_keep=4)
        t_f, pe_f, ke_f = full.trajectory_energies()
        # pick the rotated generation written at step 8 (has history)
        ckpt = None
        for q in [ck] + [Path(str(ck) + f".{i}") for i in range(1, 5)]:
            if q.exists():
                c0 = read_checkpoint(q, mol=glycine_fragmented(4).parent)
                if c0.step == 8:
                    ckpt = c0
        assert ckpt is not None
        assert ckpt.mts["prev_step"] == 4
        res = self._coord(v0, mts_k=4, mts_extrapolate=extrapolate,
                          resume=ckpt)
        t_r, pe_r, ke_r = res.trajectory_energies()
        np.testing.assert_array_equal(pe_f, pe_r)
        np.testing.assert_array_equal(ke_f, ke_r)
        np.testing.assert_array_equal(full.coords, res.coords)
        np.testing.assert_array_equal(full.velocities, res.velocities)

    def test_mid_cycle_resume_rejected(self, v0, tmp_path):
        """The coordinator (unlike the sync driver) only resumes at
        outer boundaries: checkpoint candidates are k-aligned, so a
        misaligned checkpoint means corrupted input."""
        ck = tmp_path / "ck.npz"
        self._coord(v0, nsteps=8, checkpoint_path=ck,
                    checkpoint_every=2)
        ckpt = read_checkpoint(ck, mol=glycine_fragmented(4).parent)
        assert ckpt.step % 4 != 0 or True  # any non-multiple works below
        bad = ckpt
        if ckpt.step % 4 == 0:
            # force a misaligned step by rewriting the metadata view
            import dataclasses

            bad = dataclasses.replace(ckpt, step=ckpt.step - 2)
        with pytest.raises(CheckpointError):
            self._coord(v0, mts_k=4, resume=bad)


class TestCliMTS:
    def test_cli_flags(self, tmp_path, capsys):
        from repro.chem.xyz import save_xyz
        from repro.cli import main
        from repro.systems import glycine_chain

        xyz = tmp_path / "gly.xyz"
        save_xyz(glycine_chain(4), xyz)
        rc = main(["aimd", str(xyz), "--surrogate", "--steps", "8",
                   "--dt", "0.25", "--order", "2", "--r-dimer", "6",
                   "--mts-k", "4", "--deterministic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mts: k=4" in out
        assert "slow-tier evaluations" in out
