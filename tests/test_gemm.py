"""GEMM auto-tuner and FLOP accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm import (
    GLOBAL_COUNTER,
    VARIANTS,
    FlopCounter,
    GemmAutoTuner,
    count_flops,
    eigh_gen,
    gemm,
    sym_inv,
    sym_inv_sqrt,
)
from repro.gemm.autotune import _gemm_variant


class TestVariants:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_equal_matmul(self, variant):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((7, 11))
        B = rng.standard_normal((11, 5))
        np.testing.assert_allclose(_gemm_variant(A, B, variant), A @ B, atol=1e-12)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variants_on_noncontiguous_inputs(self, variant):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((20, 14))[::2, ::2]  # strided view
        B = rng.standard_normal((14, 6))[::2]
        np.testing.assert_allclose(_gemm_variant(A, B, variant), A @ B, atol=1e-12)


class TestAutoTuner:
    def test_trials_then_cache(self):
        tuner = GemmAutoTuner()
        rng = np.random.default_rng(2)
        A = rng.standard_normal((16, 9))
        B = rng.standard_normal((9, 12))
        ref = A @ B
        ntrials = len(VARIANTS) * tuner.trials_per_variant
        for i in range(ntrials + 2):
            np.testing.assert_allclose(tuner.gemm(A, B), ref, atol=1e-12)
        key = (16, 9, 12)
        assert key in tuner.best
        assert len(tuner.trials[key]) == ntrials
        assert tuner.best[key] in VARIANTS

    def test_best_is_fastest_trial(self):
        tuner = GemmAutoTuner()
        A = np.random.default_rng(3).standard_normal((30, 30))
        for _ in range(len(VARIANTS) * tuner.trials_per_variant):
            tuner.gemm(A, A)
        (key, picked, times), = tuner.report()
        assert times[picked] == min(times.values())

    def test_multiple_trials_per_variant(self):
        """Each variant is sampled trials_per_variant times round-robin,
        and the winner is judged on its minimum sample."""
        tuner = GemmAutoTuner(trials_per_variant=3)
        A = np.eye(8)
        key = (8, 8, 8)
        for i in range(len(VARIANTS) * 3):
            tuner.gemm(A, A)
            if i < len(VARIANTS) * 3 - 1:
                assert key not in tuner.best  # not committed early
        assert key in tuner.best
        per_variant = {}
        for v, _ in tuner.trials[key]:
            per_variant[v] = per_variant.get(v, 0) + 1
        assert per_variant == {v: 3 for v in VARIANTS}
        (_, picked, times), = tuner.report()
        assert times[picked] == min(times.values())

    def test_min_over_trials_rejects_first_call_noise(self):
        """A single slow outlier sample must not veto a variant."""
        tuner = GemmAutoTuner(trials_per_variant=2)
        key = (1, 1, 1)
        # hand-crafted trial log: NN's first sample is noisy-slow, but
        # its best sample beats everything else
        tuner.trials[key] = [
            ("NN", 9.0), ("NT", 2.0), ("TN", 3.0), ("TT", 4.0),
            ("NN", 1.0), ("NT", 2.1), ("TN", 3.1), ("TT", 4.1),
        ]
        times = tuner._min_times(tuner.trials[key])
        assert times == {"NN": 1.0, "NT": 2.0, "TN": 3.0, "TT": 4.0}
        assert min(times, key=times.get) == "NN"

    def test_trial_target_lowered_mid_run_still_commits(self):
        """The completion check is >=, not ==: if the trial target drops
        below the samples already taken (trials_per_variant lowered, or
        a restored trial log past the target), the next call must still
        commit a winner instead of pinning the shape in trial mode."""
        tuner = GemmAutoTuner(trials_per_variant=3)
        A = np.eye(6)
        key = (6, 6, 6)
        for _ in range(6):  # mid-way through the 12-trial schedule
            tuner.gemm(A, A)
        assert key not in tuner.best
        tuner.trials_per_variant = 1  # target is now 4 < 7 samples
        tuner.gemm(A, A)
        assert key in tuner.best

    def test_disabled_tuner_uses_default(self):
        tuner = GemmAutoTuner(enabled=False)
        A = np.eye(4)
        tuner.gemm(A, A)
        assert not tuner.trials

    def test_shape_mismatch_raises(self):
        tuner = GemmAutoTuner()
        with pytest.raises(ValueError, match="mismatch"):
            tuner.gemm(np.ones((2, 3)), np.ones((2, 3)))

    def test_reset(self):
        tuner = GemmAutoTuner()
        A = np.eye(5)
        for _ in range(5):
            tuner.gemm(A, A)
        tuner.reset()
        assert not tuner.best and not tuner.trials


class TestPersistence:
    """Winner tables survive a save/load round trip (``--gemm-cache``)."""

    def _tuned(self) -> GemmAutoTuner:
        tuner = GemmAutoTuner(trials_per_variant=1)
        A = np.eye(6)
        B = np.eye(6)
        for _ in range(len(VARIANTS)):
            tuner.gemm(A, B)
        assert tuner.best  # the shape committed a winner
        return tuner

    def test_round_trip(self, tmp_path):
        tuner = self._tuned()
        path = str(tmp_path / "gemm.json")
        tuner.save(path)
        fresh = GemmAutoTuner()
        assert fresh.load(path) == len(tuner.best)
        assert fresh.best == tuner.best
        # a preloaded shape skips its trial phase entirely
        fresh.gemm(np.eye(6), np.eye(6))
        assert (6, 6, 6) not in fresh.trials

    def test_load_keeps_local_winners(self, tmp_path):
        tuner = self._tuned()
        path = str(tmp_path / "gemm.json")
        tuner.save(path)
        other = GemmAutoTuner()
        key = next(iter(tuner.best))
        local = "TT" if tuner.best[key] != "TT" else "NN"
        other.best[key] = local
        assert other.load(path) == 0
        assert other.best[key] == local  # own measurement wins

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "gemm.json"
        path.write_text('{"version": 99, "best": {}}')
        with pytest.raises(ValueError, match="version"):
            GemmAutoTuner().load(str(path))

    def test_load_rejects_unknown_variant(self, tmp_path):
        path = tmp_path / "gemm.json"
        path.write_text('{"version": 1, "best": {"2x2x2": "XX"}}')
        with pytest.raises(ValueError, match="variant"):
            GemmAutoTuner().load(str(path))

    def test_save_leaves_no_temp_file(self, tmp_path):
        tuner = self._tuned()
        path = tmp_path / "gemm.json"
        tuner.save(str(path))
        assert path.exists()
        assert not (tmp_path / "gemm.json.tmp").exists()


class TestFlopCounting:
    def test_gemm_counts_2mnk(self):
        with count_flops() as c:
            gemm(np.ones((3, 4)), np.ones((4, 5)))
        assert c.flops == 2 * 3 * 4 * 5
        assert c.calls == 1

    def test_counter_accumulates(self):
        ctr = FlopCounter()
        ctr.add_gemm(2, 3, 4)
        ctr.add_gemm(2, 3, 4)
        assert ctr.flops == 2 * (2 * 3 * 4 * 2)
        assert ctr.calls == 2
        assert ctr.by_shape[(2, 4, 3)] == 2

    def test_reset(self):
        ctr = FlopCounter()
        ctr.add_gemm(1, 1, 1)
        ctr.reset()
        assert ctr.snapshot() == (0, 0)

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_flops_lower_bound(self, m, k, n):
        """The runtime counter is exactly 2mnk per call (paper Sec. VI-C)."""
        before = GLOBAL_COUNTER.snapshot()[0]
        gemm(np.zeros((m, k)), np.zeros((k, n)))
        assert GLOBAL_COUNTER.snapshot()[0] - before == 2 * m * n * k


class TestLinalgHelpers:
    def test_sym_inv_sqrt(self):
        rng = np.random.default_rng(4)
        A = rng.standard_normal((8, 8))
        M = A @ A.T + 8 * np.eye(8)
        X = sym_inv_sqrt(M)
        np.testing.assert_allclose(X @ M @ X, np.eye(8), atol=1e-10)

    def test_sym_inv_sqrt_screens_singular(self):
        M = np.diag([1.0, 1.0, 1e-16])
        X = sym_inv_sqrt(M)
        assert np.isfinite(X).all()

    def test_sym_inv(self):
        rng = np.random.default_rng(5)
        A = rng.standard_normal((6, 6))
        M = A @ A.T + 6 * np.eye(6)
        np.testing.assert_allclose(sym_inv(M) @ M, np.eye(6), atol=1e-9)

    def test_eigh_gen(self):
        rng = np.random.default_rng(6)
        A = rng.standard_normal((7, 7))
        F = A + A.T
        B = rng.standard_normal((7, 7))
        S = B @ B.T + 7 * np.eye(7)
        eps, C = eigh_gen(F, S)
        np.testing.assert_allclose(F @ C, S @ C @ np.diag(eps), atol=1e-9)
        np.testing.assert_allclose(C.T @ S @ C, np.eye(7), atol=1e-9)
