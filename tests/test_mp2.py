"""MP2 energies and the analytic RI-MP2 gradient."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import Molecule
from repro.mp2 import (
    apply_orbital_hessian,
    full_mo_b,
    mp2,
    mp2_conventional,
    mp2_ri,
    rimp2_gradient,
    solve_zvector,
)
from repro.scf import rhf

from .conftest import finite_difference_gradient


class TestMP2Energies:
    def test_h2_sto3g_value(self, h2):
        res = rhf(h2, "sto-3g", ri=False)
        m = mp2_conventional(res)
        # Known STO-3G H2 MP2 correlation at 1.4 Bohr
        assert m.e_corr == pytest.approx(-0.01316, abs=3e-4)

    def test_correlation_negative(self, water):
        res = rhf(water, "sto-3g", ri=True)
        assert mp2_ri(res).e_corr < 0

    def test_ri_close_to_conventional(self, water):
        rc = rhf(water, "sto-3g", ri=False)
        rr = rhf(water, "sto-3g", ri=True)
        ec = mp2_conventional(rc).e_corr
        er = mp2_ri(rr).e_corr
        assert abs(ec - er) < 5e-4

    def test_dispatch(self, h2):
        rc = rhf(h2, "sto-3g", ri=False)
        rr = rhf(h2, "sto-3g", ri=True)
        assert mp2(rc).t2 is not None
        assert mp2(rr).B_ia is not None

    def test_bigger_basis_more_correlation(self, water):
        e_min = mp2_ri(rhf(water, "sto-3g", ri=True)).e_corr
        e_dz = mp2_ri(rhf(water, "repro-dz", ri=True)).e_corr
        assert e_dz < e_min  # more virtuals -> more correlation energy

    def test_total_energy_property(self, h2):
        res = rhf(h2, "sto-3g", ri=True)
        m = mp2_ri(res)
        assert m.e_total == pytest.approx(res.energy + m.e_corr)

    def test_amplitude_symmetry(self, water):
        res = rhf(water, "sto-3g", ri=True)
        t2 = mp2_ri(res).t2
        # t_ij^ab = t_ji^ba
        np.testing.assert_allclose(t2, t2.transpose(1, 0, 3, 2), atol=1e-12)


class TestZVector:
    def test_dense_matches_cg(self, water):
        res = rhf(water, "sto-3g", ri=True)
        Bmo = full_mo_b(res)
        nocc = res.nocc
        nvirt = Bmo.shape[0] - nocc
        rng = np.random.default_rng(0)
        theta = rng.standard_normal((nvirt, nocc))
        zd = solve_zvector(theta, Bmo, res.eps, nocc, dense_cutoff=10**9)
        zc = solve_zvector(theta, Bmo, res.eps, nocc, dense_cutoff=0)
        np.testing.assert_allclose(zd, zc, atol=1e-8)

    def test_operator_symmetric(self, water):
        res = rhf(water, "sto-3g", ri=True)
        Bmo = full_mo_b(res)
        nocc = res.nocc
        nvirt = Bmo.shape[0] - nocc
        rng = np.random.default_rng(1)
        u = rng.standard_normal((nvirt, nocc))
        v = rng.standard_normal((nvirt, nocc))
        Au = apply_orbital_hessian(u, Bmo, res.eps, nocc)
        Av = apply_orbital_hessian(v, Bmo, res.eps, nocc)
        assert float(np.sum(v * Au)) == pytest.approx(float(np.sum(u * Av)), rel=1e-9)

    def test_solution_satisfies_equation(self, water):
        res = rhf(water, "sto-3g", ri=True)
        Bmo = full_mo_b(res)
        nocc = res.nocc
        nvirt = Bmo.shape[0] - nocc
        rng = np.random.default_rng(2)
        theta = rng.standard_normal((nvirt, nocc))
        z = solve_zvector(theta, Bmo, res.eps, nocc)
        np.testing.assert_allclose(
            apply_orbital_hessian(z, Bmo, res.eps, nocc), theta, atol=1e-8
        )


class TestRIMP2Gradient:
    def _total(self, basis):
        def fn(mol):
            r = rhf(mol, basis, ri=True)
            return r.energy + mp2_ri(r).e_corr

        return fn

    def test_h2_fd(self, h2_bent):
        res = rhf(h2_bent, "sto-3g", ri=True)
        ga = rimp2_gradient(res)
        gf = finite_difference_gradient(self._total("sto-3g"), h2_bent)
        np.testing.assert_allclose(ga, gf, atol=5e-7)

    def test_hehp_fd(self):
        mol = Molecule(["He", "H"], [[0, 0, 0], [0.1, 0, 1.4632]], charge=1)
        res = rhf(mol, "sto-3g", ri=True)
        ga = rimp2_gradient(res)
        gf = finite_difference_gradient(self._total("sto-3g"), mol)
        np.testing.assert_allclose(ga, gf, atol=5e-7)

    def test_water_sto3g_fd(self, water_distorted):
        res = rhf(water_distorted, "sto-3g", ri=True)
        ga = rimp2_gradient(res)
        gf = finite_difference_gradient(self._total("sto-3g"), water_distorted)
        np.testing.assert_allclose(ga, gf, atol=1e-6)

    @pytest.mark.slow
    def test_water_dz_fd(self, water_distorted):
        res = rhf(water_distorted, "repro-dz", ri=True)
        ga = rimp2_gradient(res)
        gf = finite_difference_gradient(self._total("repro-dz"), water_distorted)
        np.testing.assert_allclose(ga, gf, atol=1e-6)

    def test_translation_invariance(self, water_distorted):
        res = rhf(water_distorted, "sto-3g", ri=True)
        g = rimp2_gradient(res)
        np.testing.assert_allclose(g.sum(axis=0), 0.0, atol=1e-8)

    def test_intermediates_exposed(self, h2_bent):
        res = rhf(h2_bent, "sto-3g", ri=True)
        out = rimp2_gradient(res, return_intermediates=True)
        assert out.e_corr < 0
        assert out.z.shape == (res.nvirt, res.nocc)
        # unrelaxed occupied density is negative semidefinite
        assert np.linalg.eigvalsh(out.P0_oo).max() < 1e-10
        # unrelaxed virtual density is positive semidefinite
        assert np.linalg.eigvalsh(out.P0_vv).min() > -1e-10

    def test_requires_ri_reference(self, h2):
        res = rhf(h2, "sto-3g", ri=False)
        with pytest.raises(ValueError, match="RI"):
            rimp2_gradient(res)


class TestMixedGradient:
    """Conventional-HF + RI-MP2 (the Fig. 3 'without RI-HF' baseline)."""

    def test_fd_within_ri_accuracy(self, water_distorted):
        from repro.basis import auto_auxiliary
        from repro.mp2 import rimp2_gradient_conventional_hf
        from repro.scf.rhf import build_ri_tensors

        mol = water_distorted
        aux = auto_auxiliary(mol, "sto-3g")
        res = rhf(mol, "sto-3g", ri=False)
        ga, e_corr = rimp2_gradient_conventional_hf(
            res, aux=aux, return_e_corr=True
        )
        assert e_corr < 0

        def etot(m):
            r = rhf(m, "sto-3g", ri=False)
            a = auto_auxiliary(m, "sto-3g")
            r.aux = a
            r.B, r.J2c, r.Jih = build_ri_tensors(r.basis, a)
            return r.energy + mp2_ri(r).e_corr

        gf = finite_difference_gradient(etot, mol)
        # exact to the RI-CPHF approximation (documented), ~1e-5 Ha/Bohr
        np.testing.assert_allclose(ga, gf, atol=1e-4)

    def test_rejects_ri_reference(self, water):
        from repro.mp2 import rimp2_gradient_conventional_hf

        res = rhf(water, "sto-3g", ri=True)
        with pytest.raises(ValueError, match="conventional"):
            rimp2_gradient_conventional_hf(res)

    def test_requires_aux(self, water):
        from repro.mp2 import rimp2_gradient_conventional_hf

        res = rhf(water, "sto-3g", ri=False)
        with pytest.raises(ValueError, match="auxiliary"):
            rimp2_gradient_conventional_hf(res)


class TestSCSMP2:
    """Spin-component-scaled MP2 (the paper's lattice-energy method)."""

    def test_scs_energy_differs(self, water):
        from repro.mp2.mp2 import SCS_OS, SCS_SS

        res = rhf(water, "sto-3g", ri=True)
        e_mp2 = mp2_ri(res).e_corr
        e_scs = mp2_ri(res, c_os=SCS_OS, c_ss=SCS_SS).e_corr
        assert e_scs != pytest.approx(e_mp2, abs=1e-6)
        assert e_scs < 0

    def test_unit_scaling_is_mp2(self, water):
        res = rhf(water, "sto-3g", ri=True)
        assert mp2_ri(res, 1.0, 1.0).e_corr == pytest.approx(
            mp2_ri(res).e_corr, abs=1e-12
        )

    def test_scs_gradient_fd(self, water_distorted):
        from repro.mp2.mp2 import SCS_OS, SCS_SS

        res = rhf(water_distorted, "sto-3g", ri=True)
        ga = rimp2_gradient(res, c_os=SCS_OS, c_ss=SCS_SS)

        def etot(m):
            r = rhf(m, "sto-3g", ri=True)
            return r.energy + mp2_ri(r, c_os=SCS_OS, c_ss=SCS_SS).e_corr

        gf = finite_difference_gradient(etot, water_distorted)
        np.testing.assert_allclose(ga, gf, atol=1e-6)
