"""Async coordinator internals: stub mode, windows, priorities, caps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.frag import FragmentedSystem
from repro.md import AsyncCoordinator, run_serial
from repro.md.scheduler import FragmentStub
from repro.systems import fibril_fragmented, water_cluster

BIG = 1.0e9


def _make(system, **kw):
    base = dict(
        nsteps=3, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
        temperature_k=0.0,
    )
    base.update(kw)
    return AsyncCoordinator(system, **base)


class TestStubMode:
    @pytest.fixture(scope="class")
    def system(self):
        return FragmentedSystem.by_components(water_cluster(4, seed=2))

    def test_stub_tasks_carry_sizes(self, system):
        co = _make(system, build_molecules=False)
        task = co.next_task()
        assert isinstance(task.molecule, FragmentStub)
        assert task.natoms in (3, 6)
        assert task.nelectrons in (10, 20)
        assert task.atoms is None

    def test_stub_run_completes(self, system):
        co = _make(system, build_molecules=False)
        while not co.done():
            task = co.next_task()
            assert task is not None
            co.complete(task, 0.0, None)
        assert co.done()
        t, pe, ke = co.trajectory_energies()
        assert len(t) == 4
        np.testing.assert_allclose(pe, 0.0)

    def test_stub_same_schedule_as_molecules(self, system):
        """Stub mode must issue the identical task sequence (frozen
        geometry) as full-molecule mode."""
        def sequence(build):
            co = _make(system, build_molecules=build)
            keys = []
            while not co.done():
                task = co.next_task()
                keys.append((task.step, task.key))
                grad = (
                    None if task.atoms is None
                    else np.zeros((task.natoms, 3))
                )
                co.complete(task, 0.0, grad)
            return keys

        assert sequence(True) == sequence(False)

    def test_stub_caps_counted(self):
        fs = fibril_fragmented(1, 3)
        co = _make(fs, build_molecules=False)
        sizes = {}
        while co.has_ready_tasks():
            task = co.next_task()
            sizes[task.key] = (task.natoms, task.nelectrons)
            co.complete(task, 0.0, None)
            if co.done():
                break
        # middle residue has two caps: 7 atoms + 2 H
        mol, atoms, caps = fs.fragment_molecule((1,))
        assert sizes[(1,)][0] == mol.natoms
        assert sizes[(1,)][1] == mol.nelectrons


class TestWindows:
    def test_plan_windows_created(self):
        fs = FragmentedSystem.by_components(water_cluster(3, seed=4))
        co = _make(fs, nsteps=7, replan_interval=3, build_molecules=False)
        while not co.done():
            task = co.next_task()
            co.complete(task, 0.0, None)
        assert sorted(co.plans) == [0, 3, 6]

    def test_skew_bounded_by_window(self):
        fs = FragmentedSystem.by_components(water_cluster(5, seed=6))
        co = _make(fs, nsteps=6, replan_interval=2, build_molecules=False)
        max_skew = 0
        while not co.done():
            task = co.next_task()
            co.complete(task, 0.0, None)
            max_skew = max(max_skew, co.max_step_skew)
        # a monomer can lead the slowest one by at most the window span
        assert max_skew <= 2 * co.replan_interval


class TestPriorities:
    def test_size_tiebreak(self):
        """At equal distance, larger polymers go first (paper: 'larger
        polymers with longer compute latency are started first')."""
        fs = FragmentedSystem.by_components(water_cluster(4, seed=9))
        co = _make(fs, build_molecules=False)
        seen = []
        while co.has_ready_tasks():
            seen.append(co.next_task())
        # group by identical distance and check descending size
        from itertools import groupby

        for _, grp in groupby(seen, key=lambda t: round(t.distance, 9)):
            sizes = [t.natoms for t in grp]
            assert sizes == sorted(sizes, reverse=True)

    def test_reference_override(self):
        fs = FragmentedSystem.by_components(water_cluster(4, seed=9))
        co = _make(fs, reference=2, build_molecules=False)
        assert co.reference == 2
        first = co.next_task()
        assert 2 in first.key  # nearest-to-reference released first


class TestSyncBarrier:
    def test_sync_never_mixes_steps(self):
        fs = FragmentedSystem.by_components(water_cluster(4, seed=3))
        co = _make(fs, synchronous=True, build_molecules=False, nsteps=4)
        current = 0
        while not co.done():
            task = co.next_task()
            assert task.step >= current
            if task.step > current:
                current = task.step
            co.complete(task, 0.0, None)

    def test_async_does_mix_steps(self):
        """With >1 monomer and per-monomer completion, async must issue at
        least one next-step task before the previous step fully drains."""
        mol = water_cluster(6, seed=2)
        fs = FragmentedSystem.by_components(mol)
        # small cutoff: monomers are nearly independent -> deep overlap
        co = AsyncCoordinator(
            fs, nsteps=3, dt_fs=0.5, r_dimer_bohr=3.0, mbe_order=2,
            temperature_k=0.0, build_molecules=False, replan_interval=4,
        )
        mixed = False
        issued_steps = []
        while not co.done():
            task = co.next_task()
            issued_steps.append(task.step)
            if len(issued_steps) > 1 and task.step < max(issued_steps):
                mixed = True
            co.complete(task, 0.0, None)
        assert mixed or len(set(issued_steps)) == 1


class TestDeadlockDetection:
    def test_run_serial_raises_on_stall(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        co = _make(fs)
        # drain the queue without completing -> artificial stall
        while co.has_ready_tasks():
            co.next_task()
        co.in_flight = 0
        calc = PairwisePotentialCalculator()
        with pytest.raises(RuntimeError, match="deadlock"):
            run_serial(co, calc)

    def test_run_serial_raises_even_with_in_flight(self):
        """In a serial driver nothing can complete concurrently, so a
        stall with in_flight > 0 is still a bug and must raise (the old
        guard busy-spun forever here)."""
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        co = _make(fs)
        while co.has_ready_tasks():
            co.next_task()
        assert co.in_flight > 0
        with pytest.raises(RuntimeError, match="deadlock"):
            run_serial(co, PairwisePotentialCalculator())

    def test_deadlock_message_carries_scheduler_state(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        co = _make(fs)
        while co.has_ready_tasks():
            co.next_task()
        with pytest.raises(RuntimeError, match=r"in_flight=1 .*pending_polymers"):
            run_serial(co, PairwisePotentialCalculator())

    def test_diagnostics_format(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=0))
        co = _make(fs)
        d = co.diagnostics()
        for token in ("queue=", "in_flight=", "skew=", "live_steps=",
                      "pending_polymers=", "issued=", "evicted="):
            assert token in d


class TestBoundedMemory:
    def test_live_steps_bounded_on_long_trajectory(self):
        """Per-step buffers must be evicted as steps retire: live state
        is bounded by the plan-window span, not by nsteps."""
        fs = FragmentedSystem.by_components(water_cluster(4, seed=7))
        nsteps, replan = 60, 4
        co = AsyncCoordinator(
            fs, nsteps=nsteps, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
            temperature_k=120.0, replan_interval=replan,
            build_molecules=False,
        )
        while not co.done():
            task = co.next_task()
            co.complete(task, 0.0, None)
        # a window's steps plus at most one window of skew can be live
        assert co.max_live_steps <= 2 * replan
        # everything but the final step was evicted
        assert co.steps_evicted == nsteps
        assert co.live_steps == 1
        assert sorted(co.coords_at) == [nsteps]
        assert list(co._grad) == [nsteps]
        assert list(co._queued) == [nsteps]
        assert list(co._pending_monomer) == [nsteps]
        assert not set(co._ref_cent_cache) - {nsteps}
        # results survive eviction in full
        t, pe, ke = co.trajectory_energies()
        assert len(t) == nsteps + 1

    def test_eviction_does_not_change_trajectory(self):
        """Eviction is bookkeeping only: energies must match a reference
        computed before eviction existed (serial, small run)."""
        fs = FragmentedSystem.by_components(water_cluster(3, seed=9))
        from repro.md.integrators import maxwell_boltzmann_velocities

        v0 = maxwell_boltzmann_velocities(fs.parent.masses_au, 150, seed=2)
        co = AsyncCoordinator(
            fs, nsteps=30, dt_fs=0.5, r_dimer_bohr=BIG, mbe_order=2,
            velocities=v0, replan_interval=4,
        )
        run_serial(co, PairwisePotentialCalculator())
        t, pe, ke = co.trajectory_energies()
        tot = pe + ke
        assert len(t) == 31
        assert np.abs(tot - tot[0]).max() < 1e-3
        assert co.steps_evicted == 30

    def test_final_step_coordinates_retained(self):
        fs = FragmentedSystem.by_components(water_cluster(2, seed=5))
        co = _make(fs, nsteps=6, build_molecules=False)
        while not co.done():
            co.complete(co.next_task(), 0.0, None)
        assert 6 in co.coords_at
        assert co.coords_at[6].shape == fs.parent.coords.shape
