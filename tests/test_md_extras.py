"""Thermostats, trajectory IO, and the smooth-switching MD path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.md import (
    BerendsenThermostat,
    LangevinThermostat,
    read_trajectory_xyz,
    run_aimd,
    write_trajectory_xyz,
)
from repro.md.integrators import (
    instantaneous_temperature,
    maxwell_boltzmann_velocities,
)
from repro.systems import water_cluster


class TestThermostats:
    def test_berendsen_drives_to_target(self):
        masses = np.ones(50) * 1837.0
        rng = np.random.default_rng(0)
        v = rng.standard_normal((50, 3)) * 1e-4  # hot start
        th = BerendsenThermostat(temperature_k=300.0, tau_fs=10.0)
        temps = []
        for _ in range(400):
            v = th.apply(v, masses, dt_fs=1.0)
            temps.append(instantaneous_temperature(masses, v))
        assert temps[-1] == pytest.approx(300.0, rel=0.05)

    def test_berendsen_zero_velocity_safe(self):
        masses = np.ones(3) * 1837.0
        v = np.zeros((3, 3))
        th = BerendsenThermostat(temperature_k=300.0)
        out = th.apply(v, masses, 1.0)
        np.testing.assert_array_equal(out, 0.0)

    def test_langevin_equilibrates(self):
        masses = np.ones(200) * 1837.0
        v = np.zeros((200, 3))
        th = LangevinThermostat(temperature_k=250.0, friction_per_fs=0.05, seed=1)
        temps = []
        for _ in range(600):
            v = th.apply(v, masses, dt_fs=1.0)
            temps.append(instantaneous_temperature(masses, v))
        # long-time average near the target
        assert np.mean(temps[300:]) == pytest.approx(250.0, rel=0.1)

    def test_langevin_deterministic_with_seed(self):
        masses = np.ones(5) * 1837.0
        v0 = np.ones((5, 3)) * 1e-4
        a = LangevinThermostat(300.0, seed=7).apply(v0.copy(), masses, 1.0)
        b = LangevinThermostat(300.0, seed=7).apply(v0.copy(), masses, 1.0)
        np.testing.assert_array_equal(a, b)

    def test_nvt_md_holds_temperature(self):
        mol = water_cluster(5, seed=3)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        th = BerendsenThermostat(temperature_k=200.0, tau_fs=5.0)
        traj = run_aimd(
            fs, calc, nsteps=80, dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2,
            temperature_k=400.0, seed=2, thermostat=th,
        )
        # kinetic temperature of late frames pulled toward 200 K
        ke_late = np.mean(traj.kinetic[-20:])
        t_late = 2 * ke_late / (3 * mol.natoms * 3.166811563e-6)
        assert t_late < 330.0


class TestTrajectoryIO:
    def test_roundtrip(self, tmp_path):
        mol = water_cluster(2, seed=1)
        calc = PairwisePotentialCalculator()
        traj = run_aimd(mol, calc, nsteps=5, dt_fs=0.5, temperature_k=100)
        path = tmp_path / "traj.xyz"
        write_trajectory_xyz(traj, mol, path)
        mol2, back = read_trajectory_xyz(path)
        assert mol2.symbols == mol.symbols
        assert len(back.times_fs) == 6
        np.testing.assert_allclose(back.times_fs, traj.times_fs, atol=1e-9)
        np.testing.assert_allclose(back.potential, traj.potential, atol=1e-9)
        np.testing.assert_allclose(back.kinetic, traj.kinetic, atol=1e-9)
        np.testing.assert_allclose(back.coords[3], traj.coords[3], atol=1e-7)

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "empty.xyz"
        p.write_text("")
        with pytest.raises(ValueError):
            read_trajectory_xyz(p)


class TestSmoothSwitchingMD:
    def test_runs_and_conserves(self):
        mol = water_cluster(4, seed=6)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        traj = run_aimd(
            fs, calc, nsteps=40, dt_fs=0.5,
            r_dimer_bohr=6.0 * BOHR_PER_ANGSTROM, mbe_order=2,
            temperature_k=150, seed=4, smooth_switching=True,
        )
        tot = traj.total
        assert np.abs(tot - tot[0]).max() < 2e-3

    def test_matches_hard_cutoff_when_all_inside(self):
        """With every pair well inside r_on the switch is identically 1
        and both paths produce the same trajectory."""
        mol = water_cluster(3, seed=8)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        v0 = maxwell_boltzmann_velocities(mol.masses_au, 100, seed=9)
        kw = dict(nsteps=10, dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2,
                  velocities=v0)
        hard = run_aimd(fs, calc, **kw)
        smooth = run_aimd(fs, calc, smooth_switching=True, **kw)
        np.testing.assert_allclose(smooth.total, hard.total, atol=1e-10)
        np.testing.assert_allclose(
            smooth.coords[-1], hard.coords[-1], atol=1e-10
        )


class TestRestart:
    def test_split_run_equals_unbroken(self, tmp_path):
        """10 steps = 5 steps + restart + 5 steps, bit-for-bit (NVE Verlet
        is deterministic)."""
        from repro.md import load_restart, save_restart

        mol = water_cluster(3, seed=12)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        v0 = maxwell_boltzmann_velocities(mol.masses_au, 150, seed=1)
        kw = dict(dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2)
        full = run_aimd(fs, calc, nsteps=10, velocities=v0, **kw)
        first = run_aimd(fs, calc, nsteps=5, velocities=v0, **kw)
        ckpt = tmp_path / "restart.npz"
        save_restart(ckpt, first)
        coords, vel, t0 = load_restart(ckpt)
        assert t0 == pytest.approx(2.5)
        second = run_aimd(
            fs, calc, nsteps=5, velocities=vel, coords0=coords, **kw
        )
        np.testing.assert_allclose(second.coords[-1], full.coords[-1], atol=1e-12)
        np.testing.assert_allclose(
            second.potential[-1], full.potential[-1], atol=1e-12
        )

    def test_empty_trajectory_raises(self, tmp_path):
        from repro.md import save_restart
        from repro.md.aimd import Trajectory

        with pytest.raises(ValueError):
            save_restart(tmp_path / "x.npz", Trajectory())


class TestDofAccounting:
    """The 3N-3 degree-of-freedom fixes: center-of-mass-free velocity
    fields must report (and be initialized at) the exact target
    temperature instead of running systematically cold/hot by
    3N/(3N-3)."""

    def test_default_ndof(self):
        from repro.md import default_ndof

        assert default_ndof(1) == 3   # floor: no division by zero
        assert default_ndof(2) == 3
        assert default_ndof(3) == 6
        assert default_ndof(30) == 87
        assert default_ndof(3, com_removed=False) == 9

    @pytest.mark.parametrize("natoms", [3, 30])
    def test_initial_temperature_is_exact(self, natoms):
        """After COM removal + rescale the instantaneous temperature
        equals the request exactly — for a 3-atom fragment the old
        unrescaled draw started ~33% cold on average."""
        rng = np.random.default_rng(4)
        masses = 1837.0 * (1.0 + rng.random(natoms))
        v = maxwell_boltzmann_velocities(masses, 300.0, seed=11)
        assert instantaneous_temperature(masses, v) == pytest.approx(
            300.0, abs=1e-9
        )
        # and the COM really is at rest
        p = (v * masses[:, None]).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-12)

    def test_single_atom_and_zero_temperature_guards(self):
        masses = np.array([1837.0])
        v = maxwell_boltzmann_velocities(masses, 300.0, seed=0)
        assert np.all(np.isfinite(v))
        v0 = maxwell_boltzmann_velocities(np.ones(4) * 1837.0, 0.0, seed=0)
        np.testing.assert_array_equal(v0, 0.0)

    def test_ndof_override(self):
        masses = np.ones(4) * 1837.0
        v = maxwell_boltzmann_velocities(masses, 300.0, seed=3)
        t_internal = instantaneous_temperature(masses, v)
        t_full = instantaneous_temperature(masses, v, ndof=12)
        assert t_full == pytest.approx(t_internal * 9 / 12)


class TestBerendsenClamp:
    def test_large_dt_over_tau_does_not_freeze(self):
        """dt/tau > 1 with a hot system used to drive lam2 negative and
        sqrt(max(lam2, 0)) zeroed the velocities; the smooth clamp
        degrades into an exact rescale to the target instead."""
        masses = np.ones(6) * 1837.0
        v = maxwell_boltzmann_velocities(masses, 1200.0, seed=5)
        th = BerendsenThermostat(temperature_k=300.0, tau_fs=0.25)
        out = th.apply(v, masses, dt_fs=1.0)  # dt/tau = 4
        assert np.any(out != 0.0)
        assert instantaneous_temperature(masses, out) == pytest.approx(
            300.0, abs=1e-9
        )

    def test_clamp_emits_tracer_instant(self):
        from repro.trace import Tracer

        masses = np.ones(6) * 1837.0
        v = maxwell_boltzmann_velocities(masses, 1200.0, seed=5)
        tracer = Tracer()
        th = BerendsenThermostat(temperature_k=300.0, tau_fs=0.25,
                                 tracer=tracer)
        th.apply(v, masses, dt_fs=1.0)
        events = tracer.instants("thermostat.clamp")
        assert len(events) == 1
        # gentle coupling emits nothing
        th.apply(v, masses, dt_fs=0.1)
        assert len(tracer.instants("thermostat.clamp")) == 1


class TestLangevinComDrift:
    def test_mean_temperature_matches_target_with_com_removal(self):
        """Regression for the DOF accounting: a small system thermalized
        by Langevin with COM projection must average the *target*
        temperature over 3N-3 DOF.  Without the fix (plain OU noise,
        3N divisor) the same measurement reads ~25% low for 4 atoms."""
        natoms = 4
        masses = np.ones(natoms) * 1837.0
        th = LangevinThermostat(temperature_k=250.0, friction_per_fs=0.05,
                                seed=9, remove_com_drift=True)
        v = maxwell_boltzmann_velocities(masses, 250.0, seed=2)
        temps = []
        for _ in range(4000):
            v = th.apply(v, masses, dt_fs=1.0)
            temps.append(instantaneous_temperature(masses, v))
        mean_t = np.mean(temps[1000:])
        assert mean_t == pytest.approx(250.0, rel=0.05)
        # the old accounting would have reported 250 * 9/12 = 187.5 K
        assert abs(mean_t - 187.5) > 30.0

    def test_com_momentum_stays_zero(self):
        masses = np.ones(5) * 1837.0
        th = LangevinThermostat(temperature_k=300.0, seed=1,
                                remove_com_drift=True)
        v = np.zeros((5, 3))
        for _ in range(50):
            v = th.apply(v, masses, dt_fs=1.0)
            p = (v * masses[:, None]).sum(axis=0)
            np.testing.assert_allclose(p, 0.0, atol=1e-10)

    def test_rng_state_roundtrip_bitwise(self):
        masses = np.ones(4) * 1837.0
        v0 = np.ones((4, 3)) * 1e-4
        a = LangevinThermostat(300.0, seed=3, remove_com_drift=True)
        b = LangevinThermostat(300.0, seed=99, remove_com_drift=True)
        a.apply(v0.copy(), masses, 1.0)  # advance the stream
        b.load_state_dict(a.state_dict())
        va = a.apply(v0.copy(), masses, 1.0)
        vb = b.apply(v0.copy(), masses, 1.0)
        np.testing.assert_array_equal(va, vb)
