"""Thermostats, trajectory IO, and the smooth-switching MD path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculators import PairwisePotentialCalculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.md import (
    BerendsenThermostat,
    LangevinThermostat,
    read_trajectory_xyz,
    run_aimd,
    write_trajectory_xyz,
)
from repro.md.integrators import (
    instantaneous_temperature,
    maxwell_boltzmann_velocities,
)
from repro.systems import water_cluster


class TestThermostats:
    def test_berendsen_drives_to_target(self):
        masses = np.ones(50) * 1837.0
        rng = np.random.default_rng(0)
        v = rng.standard_normal((50, 3)) * 1e-4  # hot start
        th = BerendsenThermostat(temperature_k=300.0, tau_fs=10.0)
        temps = []
        for _ in range(400):
            v = th.apply(v, masses, dt_fs=1.0)
            temps.append(instantaneous_temperature(masses, v))
        assert temps[-1] == pytest.approx(300.0, rel=0.05)

    def test_berendsen_zero_velocity_safe(self):
        masses = np.ones(3) * 1837.0
        v = np.zeros((3, 3))
        th = BerendsenThermostat(temperature_k=300.0)
        out = th.apply(v, masses, 1.0)
        np.testing.assert_array_equal(out, 0.0)

    def test_langevin_equilibrates(self):
        masses = np.ones(200) * 1837.0
        v = np.zeros((200, 3))
        th = LangevinThermostat(temperature_k=250.0, friction_per_fs=0.05, seed=1)
        temps = []
        for _ in range(600):
            v = th.apply(v, masses, dt_fs=1.0)
            temps.append(instantaneous_temperature(masses, v))
        # long-time average near the target
        assert np.mean(temps[300:]) == pytest.approx(250.0, rel=0.1)

    def test_langevin_deterministic_with_seed(self):
        masses = np.ones(5) * 1837.0
        v0 = np.ones((5, 3)) * 1e-4
        a = LangevinThermostat(300.0, seed=7).apply(v0.copy(), masses, 1.0)
        b = LangevinThermostat(300.0, seed=7).apply(v0.copy(), masses, 1.0)
        np.testing.assert_array_equal(a, b)

    def test_nvt_md_holds_temperature(self):
        mol = water_cluster(5, seed=3)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        th = BerendsenThermostat(temperature_k=200.0, tau_fs=5.0)
        traj = run_aimd(
            fs, calc, nsteps=80, dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2,
            temperature_k=400.0, seed=2, thermostat=th,
        )
        masses = mol.masses_au
        # kinetic temperature of late frames pulled toward 200 K
        ke_late = np.mean(traj.kinetic[-20:])
        t_late = 2 * ke_late / (3 * mol.natoms * 3.166811563e-6)
        assert t_late < 330.0


class TestTrajectoryIO:
    def test_roundtrip(self, tmp_path):
        mol = water_cluster(2, seed=1)
        calc = PairwisePotentialCalculator()
        traj = run_aimd(mol, calc, nsteps=5, dt_fs=0.5, temperature_k=100)
        path = tmp_path / "traj.xyz"
        write_trajectory_xyz(traj, mol, path)
        mol2, back = read_trajectory_xyz(path)
        assert mol2.symbols == mol.symbols
        assert len(back.times_fs) == 6
        np.testing.assert_allclose(back.times_fs, traj.times_fs, atol=1e-9)
        np.testing.assert_allclose(back.potential, traj.potential, atol=1e-9)
        np.testing.assert_allclose(back.kinetic, traj.kinetic, atol=1e-9)
        np.testing.assert_allclose(back.coords[3], traj.coords[3], atol=1e-7)

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "empty.xyz"
        p.write_text("")
        with pytest.raises(ValueError):
            read_trajectory_xyz(p)


class TestSmoothSwitchingMD:
    def test_runs_and_conserves(self):
        mol = water_cluster(4, seed=6)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        traj = run_aimd(
            fs, calc, nsteps=40, dt_fs=0.5,
            r_dimer_bohr=6.0 * BOHR_PER_ANGSTROM, mbe_order=2,
            temperature_k=150, seed=4, smooth_switching=True,
        )
        tot = traj.total
        assert np.abs(tot - tot[0]).max() < 2e-3

    def test_matches_hard_cutoff_when_all_inside(self):
        """With every pair well inside r_on the switch is identically 1
        and both paths produce the same trajectory."""
        mol = water_cluster(3, seed=8)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        v0 = maxwell_boltzmann_velocities(mol.masses_au, 100, seed=9)
        kw = dict(nsteps=10, dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2,
                  velocities=v0)
        hard = run_aimd(fs, calc, **kw)
        smooth = run_aimd(fs, calc, smooth_switching=True, **kw)
        np.testing.assert_allclose(smooth.total, hard.total, atol=1e-10)
        np.testing.assert_allclose(
            smooth.coords[-1], hard.coords[-1], atol=1e-10
        )


class TestRestart:
    def test_split_run_equals_unbroken(self, tmp_path):
        """10 steps = 5 steps + restart + 5 steps, bit-for-bit (NVE Verlet
        is deterministic)."""
        from repro.md import load_restart, save_restart

        mol = water_cluster(3, seed=12)
        fs = FragmentedSystem.by_components(mol)
        calc = PairwisePotentialCalculator()
        v0 = maxwell_boltzmann_velocities(mol.masses_au, 150, seed=1)
        kw = dict(dt_fs=0.5, r_dimer_bohr=1e9, mbe_order=2)
        full = run_aimd(fs, calc, nsteps=10, velocities=v0, **kw)
        first = run_aimd(fs, calc, nsteps=5, velocities=v0, **kw)
        ckpt = tmp_path / "restart.npz"
        save_restart(ckpt, first)
        coords, vel, t0 = load_restart(ckpt)
        assert t0 == pytest.approx(2.5)
        second = run_aimd(
            fs, calc, nsteps=5, velocities=vel, coords0=coords, **kw
        )
        np.testing.assert_allclose(second.coords[-1], full.coords[-1], atol=1e-12)
        np.testing.assert_allclose(
            second.potential[-1], full.potential[-1], atol=1e-12
        )

    def test_empty_trajectory_raises(self, tmp_path):
        from repro.md import save_restart
        from repro.md.aimd import Trajectory

        with pytest.raises(ValueError):
            save_restart(tmp_path / "x.npz", Trajectory())
