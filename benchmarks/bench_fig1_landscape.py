"""Fig. 1 / Table II — accuracy-vs-size landscape of static and AIMD
calculations across theory levels, with this work's systems placed on it.

Regenerates the figure's content as a table: largest system per level
(static and AIMD), the associated accuracy tier, and the paper's
headline claim that this work's AIMD is >1000x larger than the previous
largest at MP2-level accuracy.
"""

from __future__ import annotations

from repro.analysis import (
    TABLE_II,
    format_table,
    largest_by_level,
    size_advantage_of_this_work,
)


def test_fig1_table2_landscape(run_once, record_output):
    def experiment() -> str:
        rows = [
            (
                e.level,
                e.kind,
                e.system,
                f"{e.electrons:,}",
                e.basis,
                f"{e.error_kjmol_per_atom:.2f}",
                e.reference,
            )
            for e in TABLE_II
        ]
        table = format_table(
            ["Level", "Kind", "System", "Electrons", "Basis",
             "err kJ/mol/atom", "Reference"],
            rows,
            title="Fig. 1 / Table II — accuracy vs. size landscape",
        )
        adv = size_advantage_of_this_work()
        largest_aimd = largest_by_level("aimd")
        lines = [
            table,
            "",
            f"This work's AIMD at MP2 level: "
            f"{largest_aimd['MP2'].electrons:,} electrons",
            f"Size advantage over previous MP2 AIMD: {adv:,.0f}x "
            f"(paper claim: >1000x)",
        ]
        return "\n".join(lines)

    out = run_once(experiment)
    record_output("fig1_landscape", out)
    assert size_advantage_of_this_work() > 1000
