"""Multi-tenant serving throughput: concurrent jobs vs sequential-cold.

The AIMD service (`repro.serve.TrajectoryService`) multiplexes fragment
tasks from many trajectories onto one worker pool and shares the warm
layer (integral workspace products, GEMM winner tables, guess cache)
across tenants. This load generator measures what that buys:

* **sequential-cold** — the one-driver-per-trajectory status quo,
  reproduced faithfully: each job runs in its own fresh
  ``python -m repro serve`` process (same worker count), so every
  trajectory pays interpreter + import startup, worker-pool spawn, and
  cold caches (workspace rebuilds, GEMM autotuner trial phases, cold
  SCF guesses), exactly as today's per-run CLI invocations do.
* **concurrent** — the same jobs submitted together to one resident
  `TrajectoryService`. Startup is paid once, the warm layer is shared
  across tenants, and on multi-core hosts fragment tasks from
  different tenants additionally overlap step-boundary stalls.
  Aggregate steps/hour must come out at least ``MIN_SPEEDUP`` ahead.

The run also demonstrates per-job crash-safe resume: a deterministic
surrogate job is killed mid-run via ``request_stop`` from a streaming
subscriber, resubmitted against the same output root, and its final
energies must match an uninterrupted reference **bitwise**.

Outputs p50/p99 per-step latency per job and warm-layer hit rates to
``benchmarks/output/serve.json`` (the CI artifact).

Runnable two ways:

* ``python benchmarks/bench_serve.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant);
* ``pytest benchmarks/bench_serve.py`` — harness form.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.gemm.autotune import GLOBAL_TUNER  # noqa: E402
from repro.integrals.workspace import get_workspace  # noqa: E402
from repro.serve import JobSpec, TrajectoryService  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

#: aggregate steps/hour: concurrent service vs sequential-cold floor
MIN_SPEEDUP = 1.15

#: worker threads shared by every configuration
NWORKERS = 4


def _qm_specs(smoke: bool) -> list[JobSpec]:
    """The tenant mix: small water clusters and a capped glycine dimer."""
    nsteps = 4 if smoke else 8
    common = dict(
        method={"kind": "rihf", "basis": "sto-3g"},
        nsteps=nsteps, dt_fs=0.5, replan_interval=2,
    )
    n_water = 2 if smoke else 3
    return [
        JobSpec(job_id="water-a", mbe_order=2,
                system={"kind": "water", "n": n_water, "seed": 0}, **common),
        JobSpec(job_id="water-b", mbe_order=2,
                system={"kind": "water", "n": n_water, "seed": 1}, **common),
        JobSpec(job_id="water-c", mbe_order=2,
                system={"kind": "water", "n": n_water, "seed": 2}, **common),
        JobSpec(job_id="glycine", mbe_order=1,
                system={"kind": "glycine-fragmented", "n": 2}, **common),
    ]


def _clear_warm_layer() -> None:
    get_workspace().clear()
    GLOBAL_TUNER.reset()


def _total_steps(summary: dict) -> int:
    return sum(info["steps"] for info in summary["jobs"].values())


def _run_sequential_cold(specs: list[JobSpec], root: Path) -> dict:
    """One fresh driver process per job — today's per-run status quo.

    Each job is executed by its own ``python -m repro serve``
    invocation (one-job spec file, same worker count as the concurrent
    service), so it pays what every standalone trajectory run pays:
    interpreter and package import, worker-pool spawn, and completely
    cold caches. Per-job latency percentiles come from the CLI's
    ``--summary-json`` artifact.
    """
    t0 = time.perf_counter()
    jobs = {}
    for spec in specs:
        spec_file = root / f"{spec.job_id}.json"
        summary_file = root / f"{spec.job_id}-summary.json"
        spec_file.parent.mkdir(parents=True, exist_ok=True)
        spec_file.write_text(json.dumps([spec.to_dict()]) + "\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", str(spec_file),
             "--out", str(root / spec.job_id),
             "--workers", str(NWORKERS),
             "--summary-json", str(summary_file)],
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                                   / "src")},
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"sequential-cold run of {spec.job_id} failed:\n"
                f"{proc.stdout}\n{proc.stderr}"
            )
        summary = json.loads(summary_file.read_text())
        jobs[spec.job_id] = summary["jobs"][spec.job_id]
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "jobs": jobs,
            "steps": sum(info["steps"] for info in jobs.values())}


def _run_concurrent(specs: list[JobSpec], root: Path) -> dict:
    """All jobs together through one resident service, warm layer shared."""
    _clear_warm_layer()
    service = TrajectoryService(root, nworkers=NWORKERS, warm_layer=True)
    for spec in specs:
        service.submit(spec)
    t0 = time.perf_counter()
    summary = service.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "jobs": summary["jobs"],
        "steps": _total_steps(summary),
        "warm_layer": summary["warm_layer"],
        "fairness": {"tasks_completed": summary["tasks_completed"],
                     "tasks_failed": summary["tasks_failed"]},
    }


def _resume_demo(root: Path) -> dict:
    """Kill a deterministic job mid-run, resume it, compare bitwise."""
    def spec():
        return JobSpec(
            job_id="det", system={"kind": "water", "n": 3, "seed": 7},
            method={"kind": "surrogate"}, nsteps=12, dt_fs=0.5,
            deterministic=True, checkpoint_every=2, replan_interval=2,
            thermostat={"kind": "local-langevin", "temperature_k": 300.0,
                        "seed": 7},
        )

    def neighbors():
        return [JobSpec(
            job_id=f"noise{i}", system={"kind": "water", "n": 3,
                                        "seed": 20 + i},
            method={"kind": "surrogate"}, nsteps=12, dt_fs=0.5,
            replan_interval=2,
        ) for i in range(2)]

    # uninterrupted reference
    service = TrajectoryService(root / "ref", nworkers=3)
    service.submit(spec())
    service.run()
    ref_energy = service.jobs["det"].final_total_energy()

    # interrupted: a streaming subscriber stops the service mid-job
    service = TrajectoryService(root / "run", nworkers=3)
    sub = service.channel.subscribe(job_id="det")

    def watch():
        seen = 0
        while True:
            event = sub.get(timeout=30.0)
            if event is None:
                return
            if event.kind == "step":
                seen += 1
                if seen >= 5:
                    service.request_stop()
                    return

    watcher = threading.Thread(target=watch, daemon=True)
    watcher.start()
    service.submit(spec())
    for s in neighbors():
        service.submit(s)
    interrupted = service.run()
    watcher.join(timeout=30.0)
    steps_before_kill = interrupted["jobs"]["det"]["steps"]

    # resume against the same output root, neighbors still running
    service = TrajectoryService(root / "run", nworkers=3)
    service.submit(spec())
    for s in neighbors():
        service.submit(s)
    resumed = service.run()
    res_energy = service.jobs["det"].final_total_energy()
    return {
        "state_after_kill": interrupted["jobs"]["det"]["state"],
        "steps_before_kill": steps_before_kill,
        "resumed": resumed["jobs"]["det"]["resumed"],
        "final_state": resumed["jobs"]["det"]["state"],
        "reference_energy_ha": ref_energy,
        "resumed_energy_ha": res_energy,
        "bitwise_identical": res_energy == ref_energy,
    }


def run_experiment(smoke: bool = False) -> dict:
    specs = _qm_specs(smoke)
    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        tmp_path = Path(tmp)
        sequential = _run_sequential_cold(specs, tmp_path / "seq")
        concurrent = _run_concurrent(specs, tmp_path / "conc")
        resume = _resume_demo(tmp_path / "resume")
    seq_rate = sequential["steps"] / sequential["wall_s"] * 3600.0
    conc_rate = concurrent["steps"] / concurrent["wall_s"] * 3600.0
    latencies = {
        job_id: {
            "concurrent": concurrent["jobs"][job_id]["latency"],
            "sequential_cold": sequential["jobs"][job_id]["latency"],
        }
        for job_id in concurrent["jobs"]
    }
    return {
        "smoke": smoke,
        "nworkers": NWORKERS,
        "njobs": len(specs),
        "min_speedup": MIN_SPEEDUP,
        "sequential_cold": {
            "wall_s": sequential["wall_s"],
            "steps": sequential["steps"],
            "steps_per_hour": seq_rate,
        },
        "concurrent": {
            "wall_s": concurrent["wall_s"],
            "steps": concurrent["steps"],
            "steps_per_hour": conc_rate,
            "warm_layer": concurrent["warm_layer"],
        },
        "speedup": conc_rate / seq_rate,
        "step_latency_s": latencies,
        "resume": resume,
    }


def format_results(results: dict) -> str:
    rows = []
    for job_id, lat in sorted(results["step_latency_s"].items()):
        conc, seq = lat["concurrent"], lat["sequential_cold"]
        rows.append((
            job_id,
            f"{seq['p50'] * 1e3:.0f}" if seq["samples"] else "-",
            f"{seq['p99'] * 1e3:.0f}" if seq["samples"] else "-",
            f"{conc['p50'] * 1e3:.0f}" if conc["samples"] else "-",
            f"{conc['p99'] * 1e3:.0f}" if conc["samples"] else "-",
        ))
    table = format_table(
        ["job", "solo p50 ms", "solo p99 ms", "conc p50 ms", "conc p99 ms"],
        rows,
        title="Per-step latency: sequential-cold vs concurrent service",
    )
    seq = results["sequential_cold"]
    conc = results["concurrent"]
    resume = results["resume"]
    lines = [
        table,
        "",
        f"sequential-cold: {seq['steps']} steps in {seq['wall_s']:.1f} s "
        f"({seq['steps_per_hour']:.0f} steps/h)",
        f"concurrent     : {conc['steps']} steps in {conc['wall_s']:.1f} s "
        f"({conc['steps_per_hour']:.0f} steps/h)",
        f"aggregate speedup: {results['speedup']:.2f}x "
        f"(gate >= {results['min_speedup']:.2f}x)",
        f"resume: killed at {resume['steps_before_kill']} steps, "
        f"resumed={resume['resumed']}, "
        f"bitwise={resume['bitwise_identical']}",
    ]
    return "\n".join(lines)


def check_results(results: dict) -> None:
    """Acceptance gates for the serving refactor."""
    conc_jobs = results["step_latency_s"]
    assert results["concurrent"]["steps"] == results["sequential_cold"]["steps"], (
        "concurrent and sequential runs retired different step counts"
    )
    assert results["speedup"] >= results["min_speedup"], (
        f"concurrent service reached only {results['speedup']:.2f}x over "
        f"sequential-cold (gate {results['min_speedup']:.2f}x)"
    )
    for job_id, lat in conc_jobs.items():
        assert lat["concurrent"]["samples"] > 0, f"{job_id}: no step latencies"
    resume = results["resume"]
    assert resume["state_after_kill"] == "interrupted"
    assert resume["resumed"], "job did not resume from its checkpoint"
    assert resume["final_state"] == "completed"
    assert resume["bitwise_identical"], (
        f"resumed energy {resume['resumed_energy_ha']!r} != reference "
        f"{resume['reference_energy_ha']!r}"
    )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small systems / few steps (CI gate)")
    ap.add_argument("--json", type=Path, default=OUTPUT_DIR / "serve.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    print(format_results(results))
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_serve_throughput(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=True))
    record_output("serve", format_results(results))
    _write_json(results, OUTPUT_DIR / "serve.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
