"""Cross-step SCF warm-start savings: cold vs warm iteration counts.

Between consecutive AIMD steps every fragment moves by a fraction of a
bohr, so seeding each SCF with the fragment's previous converged density
(`repro.calculators.GuessCache`) should cut iteration counts by the
2-4x reported for production AIMD codes. This benchmark runs the same
short trajectory twice — warm starts off (cold GWH guess every solve)
and on — and records total SCF iterations, wall time, and the final
total energy of each run. The energies must agree to 1e-8 Ha: a warm
start changes the iteration path, never the converged answer.

Runnable two ways:

* ``python benchmarks/bench_warmstart.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant) writing a JSON
  record under ``benchmarks/output/``;
* ``pytest benchmarks/bench_warmstart.py`` — the harness form used by
  the other paper benchmarks.

The cold run's calculator carries a ``GuessCache(enabled=False)`` — a
pure statistics collector that never serves a guess — so both runs are
instrumented by the identical code path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.calculators import GuessCache, RIHFCalculator  # noqa: E402
from repro.frag import FragmentedSystem  # noqa: E402
from repro.md.aimd import run_aimd  # noqa: E402
from repro.systems import glycine_fragmented, water_cluster  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

#: final total energies of the warm and cold runs must agree to this
ENERGY_TOL_HA = 1.0e-8


def _run(system: FragmentedSystem, nsteps: int, warm: bool) -> dict:
    calc = RIHFCalculator(
        guess_cache=GuessCache() if warm else GuessCache(enabled=False)
    )
    t0 = time.perf_counter()
    # 0.25 fs: the standard unconstrained-H AIMD step; extrapolation
    # error scales as O(dt^3), so the step size directly sets the
    # warm-start savings
    traj = run_aimd(
        system, calc, nsteps=nsteps, dt_fs=0.25, temperature_k=100.0,
        seed=0, r_dimer_bohr=1.0e6, mbe_order=2, replan_interval=1,
        warm_start=warm,
    )
    wall = time.perf_counter() - t0
    s = calc.guess_cache.stats()
    return {
        "iters": s["iters_warm"] + s["iters_cold"],
        "hits": s["hits"],
        "misses": s["misses"],
        "wall_s": wall,
        "final_total_energy": float(traj.total[-1]),
    }


def run_experiment(smoke: bool = False) -> dict:
    """Cold/warm trajectory pairs for the glycine and water systems."""
    if smoke:
        cases = [
            ("glycine-2mer", glycine_fragmented(2), 3),
            ("water-2", FragmentedSystem.by_components(
                water_cluster(2, seed=1)), 2),
        ]
    else:
        cases = [
            ("glycine-2mer", glycine_fragmented(2), 12),
            ("water-3", FragmentedSystem.by_components(
                water_cluster(3, seed=1)), 12),
        ]
    results = {"smoke": smoke, "energy_tol_ha": ENERGY_TOL_HA, "cases": []}
    for name, system, nsteps in cases:
        cold = _run(system, nsteps, warm=False)
        warmed = _run(system, nsteps, warm=True)
        de = abs(warmed["final_total_energy"] - cold["final_total_energy"])
        results["cases"].append({
            "system": name,
            "natoms": system.parent.natoms,
            "nsteps": nsteps,
            "cold": cold,
            "warm": warmed,
            "iteration_ratio": cold["iters"] / max(warmed["iters"], 1),
            "final_energy_delta_ha": de,
        })
    return results


def format_results(results: dict) -> str:
    rows = []
    for case in results["cases"]:
        rows.append((
            case["system"],
            case["nsteps"],
            case["cold"]["iters"],
            case["warm"]["iters"],
            f"{case['iteration_ratio']:.2f}x",
            f"{case['cold']['wall_s']:.1f}",
            f"{case['warm']['wall_s']:.1f}",
            f"{case['final_energy_delta_ha']:.1e}",
        ))
    return format_table(
        ["system", "steps", "cold iters", "warm iters", "ratio",
         "cold s", "warm s", "|dE| Ha"],
        rows,
        title="Cross-step SCF warm starts — cold vs warm trajectories",
    )


def check_results(results: dict) -> None:
    """Acceptance gates: bit-compatible energies, real iteration savings."""
    for case in results["cases"]:
        assert case["final_energy_delta_ha"] <= ENERGY_TOL_HA, (
            f"{case['system']}: warm/cold energies differ by "
            f"{case['final_energy_delta_ha']:.2e} Ha"
        )
        assert case["warm"]["hits"] > 0, (
            f"{case['system']}: warm run never hit the cache"
        )
    if not results["smoke"]:
        gly = results["cases"][0]
        assert gly["iteration_ratio"] >= 1.5, (
            f"warm start saved only {gly['iteration_ratio']:.2f}x "
            "SCF iterations on glycine (expected >= 1.5x)"
        )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small systems / few steps (CI gate)")
    ap.add_argument("--json", type=Path,
                    default=OUTPUT_DIR / "warmstart.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    table = format_results(results)
    print(table)
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_warmstart_savings(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=False))
    table = format_results(results)
    record_output("warmstart", table)
    _write_json(results, OUTPUT_DIR / "warmstart.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
