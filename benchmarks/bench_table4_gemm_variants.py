"""Table IV — DGEMM variant (NN/NT/TN/TT) performance on matrix shapes
arising in RI-MP2 gradient calculations.

The paper measures up to 20x between variants on an MI250X GCD for
three tall-skinny shapes; which variant wins is shape/machine/library
dependent — precisely why the auto-tuner exists. We time the same four
variants through the identical dispatch machinery on this machine's
BLAS (shapes scaled to CPU-feasible sizes, same aspect ratios), and
verify the auto-tuner picks the fastest one.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.gemm import VARIANTS, GemmAutoTuner
from repro.gemm.autotune import _gemm_variant

#: paper shapes (m, k, n) scaled by ~1/8 in the large dimension
SHAPES = [
    (960, 40560, 960),
    (120, 369735, 120),
    (192, 92256, 192),
]


def _rate_gflops(m: int, k: int, n: int, seconds: float) -> float:
    return 2.0 * m * n * k / seconds / 1.0e9


def test_table4_gemm_variants(run_once, record_output):
    rng = np.random.default_rng(0)

    def experiment():
        rows = []
        winners = {}
        for m, k, n in SHAPES:
            A = rng.standard_normal((m, k))
            B = rng.standard_normal((k, n))
            rates = {}
            for v in VARIANTS:
                _gemm_variant(A, B, v)  # warm up caches/threads
                t0 = time.perf_counter()
                _gemm_variant(A, B, v)
                rates[v] = _rate_gflops(m, k, n, time.perf_counter() - t0)
            best = max(rates, key=rates.get)
            winners[(m, k, n)] = (best, rates)
            rows.append(
                (m, k, n)
                + tuple(f"{rates[v]:.2f}" for v in VARIANTS)
                + (best, f"{rates[best] / min(rates.values()):.2f}x")
            )
        table = format_table(
            ["m", "k", "n", *(f"{v} GF/s" for v in VARIANTS), "best",
             "best/worst"],
            rows,
            title=(
                "Table IV (CPU BLAS reproduction) — GEMM variant performance "
                "on RI-MP2 gradient shapes\n(paper: MI250X GCD, 0.33-19.5 "
                "TFLOP/s spread, up to 20x between variants)"
            ),
        )
        return table, winners

    table, winners = run_once(experiment)
    record_output("table4_gemm_variants", table)

    # the auto-tuner must converge to the per-shape best variant
    m, k, n = SHAPES[1]
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    tuner = GemmAutoTuner()
    for _ in range(len(VARIANTS) * tuner.trials_per_variant + 1):
        tuner.gemm(A, B)
    picked = tuner.best[(m, k, n)]
    (_, _, trial_times), = tuner.report()
    assert trial_times[picked] == min(trial_times.values())
