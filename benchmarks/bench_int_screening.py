"""Schwarz screening + integral workspace: baseline vs accelerated AIMD.

Every MD step re-solves the same fragments at slightly moved geometries,
so the integral engine's geometry-independent work — shell-pair Hermite
tables shared by seven drivers per solve, the auxiliary-basis group
scaffolding (whose E tables do not depend on geometry at all), and the
Cauchy-Schwarz bound table — is rebuilt thousands of times for nothing.
This benchmark runs the same short trajectory twice:

* **baseline** — ``IntegralWorkspace(enabled=False)`` (every lookup
  misses, nothing cached) and ``int_screen=0`` (no integrals skipped);
* **accelerated** — a fresh workspace plus the default Schwarz
  screening tolerance (`repro.integrals.workspace.DEFAULT_INT_SCREEN`).

Both runs use cold SCF guesses (``warm_start=False``) so the iteration
paths are identical and the comparison isolates the integral layer. The
acceptance gates mirror the screening contract: final total energies
agree to 1e-9 Ha, SCF iteration counts are *unchanged* (screening at
1e-12 must not perturb the convergence path), and the accelerated run is
>= 1.3x faster on the repeated-fragment glycine loop (full mode only —
smoke runs are too short to time reliably).

Runnable two ways:

* ``python benchmarks/bench_int_screening.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant) writing a JSON
  record under ``benchmarks/output/``;
* ``pytest benchmarks/bench_int_screening.py`` — the harness form used
  by the other paper benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.calculators import GuessCache, RIHFCalculator  # noqa: E402
from repro.frag import FragmentedSystem  # noqa: E402
from repro.integrals.workspace import (  # noqa: E402
    DEFAULT_INT_SCREEN,
    IntegralWorkspace,
)
from repro.md.aimd import run_aimd  # noqa: E402
from repro.systems import glycine_fragmented, water_cluster  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

#: final total energies of the two runs must agree to this
ENERGY_TOL_HA = 1.0e-9

#: required wall-time ratio (baseline / accelerated) in full mode
MIN_SPEEDUP = 1.3


def _run(system: FragmentedSystem, nsteps: int, accelerated: bool) -> dict:
    workspace = IntegralWorkspace(enabled=accelerated)
    calc = RIHFCalculator(
        workspace=workspace,
        int_screen=DEFAULT_INT_SCREEN if accelerated else 0.0,
        # disabled cache = pure statistics collector: counts the SCF
        # iterations of every solve without ever serving a guess, so
        # both runs take identical iteration paths
        guess_cache=GuessCache(enabled=False),
    )
    t0 = time.perf_counter()
    traj = run_aimd(
        system, calc, nsteps=nsteps, dt_fs=0.25, temperature_k=100.0,
        seed=0, r_dimer_bohr=1.0e6, mbe_order=2, replan_interval=1,
        warm_start=False,
    )
    wall = time.perf_counter() - t0
    ws = workspace.stats()
    gc = calc.guess_cache.stats()
    return {
        "wall_s": wall,
        "scf_iters": gc["iters_warm"] + gc["iters_cold"],
        "final_total_energy": float(traj.total[-1]),
        "workspace_hits": ws["hits"],
        "workspace_misses": ws["misses"],
        "pairs_skipped": ws["pairs_skipped"],
        "pairs_total": ws["pairs_total"],
        "neglected_bound": ws["neglected_bound"],
    }


def run_experiment(smoke: bool = False) -> dict:
    """Baseline/accelerated trajectory pairs (glycine chain + water)."""
    if smoke:
        cases = [
            ("glycine-2mer", glycine_fragmented(2), 2),
            ("water-2", FragmentedSystem.by_components(
                water_cluster(2, seed=1)), 2),
        ]
    else:
        # the 3-residue chain is the smallest system with genuinely
        # long-range shell pairs (residues 1<->3), where Schwarz
        # screening has real traction; MBE2 re-solves every monomer
        # inside two dimer fragments per step, so the shell-pair cache
        # sees the cross-fragment reuse pattern of production MBE runs
        cases = [
            ("glycine-3mer", glycine_fragmented(3), 3),
            ("water-3", FragmentedSystem.by_components(
                water_cluster(3, seed=1)), 6),
        ]
    results = {
        "smoke": smoke,
        "energy_tol_ha": ENERGY_TOL_HA,
        "min_speedup": MIN_SPEEDUP,
        "int_screen": DEFAULT_INT_SCREEN,
        "cases": [],
    }
    for name, system, nsteps in cases:
        base = _run(system, nsteps, accelerated=False)
        fast = _run(system, nsteps, accelerated=True)
        de = abs(fast["final_total_energy"] - base["final_total_energy"])
        results["cases"].append({
            "system": name,
            "natoms": system.parent.natoms,
            "nsteps": nsteps,
            "baseline": base,
            "accelerated": fast,
            "speedup": base["wall_s"] / max(fast["wall_s"], 1e-12),
            "final_energy_delta_ha": de,
            "scf_iters_equal": base["scf_iters"] == fast["scf_iters"],
        })
    return results


def format_results(results: dict) -> str:
    rows = []
    for case in results["cases"]:
        fast = case["accelerated"]
        rows.append((
            case["system"],
            case["nsteps"],
            f"{case['baseline']['wall_s']:.1f}",
            f"{fast['wall_s']:.1f}",
            f"{case['speedup']:.2f}x",
            f"{fast['pairs_skipped']}/{fast['pairs_total']}",
            f"{fast['workspace_hits']}",
            f"{case['final_energy_delta_ha']:.1e}",
        ))
    return format_table(
        ["system", "steps", "base s", "accel s", "speedup",
         "skipped", "ws hits", "|dE| Ha"],
        rows,
        title="Schwarz screening + integral workspace — baseline vs "
              "accelerated",
    )


def check_results(results: dict) -> None:
    """Acceptance gates: exact energies, identical SCF paths, speedup."""
    for case in results["cases"]:
        assert case["final_energy_delta_ha"] <= ENERGY_TOL_HA, (
            f"{case['system']}: screened/exact energies differ by "
            f"{case['final_energy_delta_ha']:.2e} Ha"
        )
        assert case["scf_iters_equal"], (
            f"{case['system']}: screening changed the SCF iteration count "
            f"({case['baseline']['scf_iters']} -> "
            f"{case['accelerated']['scf_iters']})"
        )
        assert case["accelerated"]["workspace_hits"] > 0, (
            f"{case['system']}: the workspace never served an entry"
        )
    if not results["smoke"]:
        gly = results["cases"][0]
        assert gly["speedup"] >= MIN_SPEEDUP, (
            f"integral caching+screening sped glycine up only "
            f"{gly['speedup']:.2f}x (expected >= {MIN_SPEEDUP}x)"
        )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small systems / few steps (CI gate)")
    ap.add_argument("--json", type=Path,
                    default=OUTPUT_DIR / "int_screening.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    table = format_results(results)
    print(table)
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_int_screening_speedup(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=False))
    table = format_results(results)
    record_output("int_screening", table)
    _write_json(results, OUTPUT_DIR / "int_screening.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
