"""Integral-layer acceleration: baseline vs PR 5 loop vs batched kernels.

Every MD step re-solves the same fragments at slightly moved geometries,
so the integral engine's geometry-independent work — shell-pair Hermite
tables shared by seven drivers per solve, the auxiliary-basis group
scaffolding (whose E tables do not depend on geometry at all), and the
Cauchy-Schwarz bound table — is rebuilt thousands of times for nothing,
and the loop drivers pay Python-level per-pair dispatch on top. This
benchmark runs the same short trajectory three times:

* **baseline** — ``IntegralWorkspace(enabled=False)`` (every lookup
  misses, nothing cached), ``int_screen=0`` (no integrals skipped), and
  the per-pair loop kernels: the pre-acceleration reference;
* **pr5-loop** — a fresh workspace plus the default Schwarz screening
  tolerance, still on the loop kernels: exactly the accelerated
  configuration PR 5 shipped;
* **batched** — the same workspace + screening on the shell-class
  batched kernels (`repro.integrals.batch`), the current default.

All runs use cold SCF guesses (``warm_start=False``) so the iteration
paths are identical and the comparison isolates the integral layer. The
acceptance gates mirror the kernel contracts: final total energies of
all three runs agree to 1e-9 Ha (batched vs pr5-loop is bitwise by
construction — the gate still checks it end to end), SCF iteration
counts are *unchanged* (neither screening at 1e-12 nor kernel batching
may perturb the convergence path), and the wall-time ratios clear the
floors below.

On speedup floors: the issue targeted 5x for the batched kernels over
the PR 5 baseline. End-to-end AIMD wall time is bounded well below that
by Amdahl — SCF gemms, DF solves, and diagonalisation are shared by
every configuration, and the bitwise batched-vs-loop contract pins the
per-pair arithmetic (gemm shapes, full Hermite cubes) so the batched
path can only remove dispatch and memory-traffic overhead, not FLOPs.
The gates are therefore set from measured ratios with CI-noise margin;
the measured values themselves are printed and recorded in the JSON
artifact. See docs/PERFORMANCE.md for the full accounting.

Runnable two ways:

* ``python benchmarks/bench_int_screening.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant) writing a JSON
  record under ``benchmarks/output/``;
* ``pytest benchmarks/bench_int_screening.py`` — the harness form used
  by the other paper benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.calculators import GuessCache, RIHFCalculator  # noqa: E402
from repro.frag import FragmentedSystem  # noqa: E402
from repro.integrals import kernel_mode, set_kernel_mode  # noqa: E402
from repro.integrals.workspace import (  # noqa: E402
    DEFAULT_INT_SCREEN,
    IntegralWorkspace,
)
from repro.md.aimd import run_aimd  # noqa: E402
from repro.systems import glycine_fragmented, water_cluster  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

#: final total energies of the runs must pairwise agree to this
ENERGY_TOL_HA = 1.0e-9

#: wall-time ratio floors on the glycine chain (baseline / config);
#: full mode only for the loop gate, smoke runs are too short for it
MIN_SPEEDUP = 1.3  # pr5-loop vs baseline, full mode (the PR 5 gate)
MIN_BATCHED_SPEEDUP = 1.5  # batched vs baseline, full mode
MIN_BATCHED_SMOKE = 1.3  # batched vs baseline, smoke mode (CI gate)

#: the three configurations: (workspace enabled, screen, kernel mode)
CONFIGS = {
    "baseline": (False, 0.0, "loop"),
    "pr5-loop": (True, DEFAULT_INT_SCREEN, "loop"),
    "batched": (True, DEFAULT_INT_SCREEN, "batched"),
}


def _run(system: FragmentedSystem, nsteps: int, config: str) -> dict:
    ws_enabled, screen, mode = CONFIGS[config]
    workspace = IntegralWorkspace(enabled=ws_enabled)
    calc = RIHFCalculator(
        workspace=workspace,
        int_screen=screen,
        # disabled cache = pure statistics collector: counts the SCF
        # iterations of every solve without ever serving a guess, so
        # all runs take identical iteration paths
        guess_cache=GuessCache(enabled=False),
    )
    prev = kernel_mode()
    set_kernel_mode(mode)
    try:
        t0 = time.perf_counter()
        traj = run_aimd(
            system, calc, nsteps=nsteps, dt_fs=0.25, temperature_k=100.0,
            seed=0, r_dimer_bohr=1.0e6, mbe_order=2, replan_interval=1,
            warm_start=False,
        )
        wall = time.perf_counter() - t0
    finally:
        set_kernel_mode(prev)
    ws = workspace.stats()
    gc = calc.guess_cache.stats()
    return {
        "wall_s": wall,
        "scf_iters": gc["iters_warm"] + gc["iters_cold"],
        "final_total_energy": float(traj.total[-1]),
        "workspace_hits": ws["hits"],
        "workspace_misses": ws["misses"],
        "pairs_skipped": ws["pairs_skipped"],
        "pairs_total": ws["pairs_total"],
        "neglected_bound": ws["neglected_bound"],
    }


def run_experiment(smoke: bool = False) -> dict:
    """Three-configuration trajectory runs (glycine chain + water)."""
    if smoke:
        cases = [
            ("glycine-2mer", glycine_fragmented(2), 2),
            ("water-2", FragmentedSystem.by_components(
                water_cluster(2, seed=1)), 2),
        ]
    else:
        # the 3-residue chain is the smallest system with genuinely
        # long-range shell pairs (residues 1<->3), where Schwarz
        # screening has real traction; MBE2 re-solves every monomer
        # inside two dimer fragments per step, so the shell-pair cache
        # sees the cross-fragment reuse pattern of production MBE runs
        cases = [
            ("glycine-3mer", glycine_fragmented(3), 3),
            ("water-3", FragmentedSystem.by_components(
                water_cluster(3, seed=1)), 6),
        ]
    results = {
        "smoke": smoke,
        "energy_tol_ha": ENERGY_TOL_HA,
        "min_speedup": MIN_SPEEDUP,
        "min_batched_speedup": MIN_BATCHED_SPEEDUP,
        "min_batched_smoke": MIN_BATCHED_SMOKE,
        "int_screen": DEFAULT_INT_SCREEN,
        "cases": [],
    }
    for name, system, nsteps in cases:
        runs = {cfg: _run(system, nsteps, cfg) for cfg in CONFIGS}
        base, loop, bat = (
            runs["baseline"], runs["pr5-loop"], runs["batched"]
        )
        results["cases"].append({
            "system": name,
            "natoms": system.parent.natoms,
            "nsteps": nsteps,
            "runs": runs,
            "speedup_loop": base["wall_s"] / max(loop["wall_s"], 1e-12),
            "speedup_batched": base["wall_s"] / max(bat["wall_s"], 1e-12),
            "speedup_batched_vs_loop":
                loop["wall_s"] / max(bat["wall_s"], 1e-12),
            "final_energy_delta_loop_ha": abs(
                loop["final_total_energy"] - base["final_total_energy"]
            ),
            "final_energy_delta_batched_ha": abs(
                bat["final_total_energy"] - base["final_total_energy"]
            ),
            "scf_iters_equal": len(
                {r["scf_iters"] for r in runs.values()}
            ) == 1,
        })
    return results


def format_results(results: dict) -> str:
    rows = []
    for case in results["cases"]:
        runs = case["runs"]
        bat = runs["batched"]
        rows.append((
            case["system"],
            case["nsteps"],
            f"{runs['baseline']['wall_s']:.1f}",
            f"{runs['pr5-loop']['wall_s']:.1f}",
            f"{bat['wall_s']:.1f}",
            f"{case['speedup_loop']:.2f}x",
            f"{case['speedup_batched']:.2f}x",
            f"{bat['pairs_skipped']}/{bat['pairs_total']}",
            f"{case['final_energy_delta_batched_ha']:.1e}",
        ))
    return format_table(
        ["system", "steps", "base s", "loop s", "batch s",
         "loop x", "batch x", "skipped", "|dE| Ha"],
        rows,
        title="Integral acceleration — baseline vs PR 5 loop vs "
              "batched kernels",
    )


def check_results(results: dict) -> None:
    """Acceptance gates: exact energies, identical SCF paths, speedup."""
    for case in results["cases"]:
        for which in ("loop", "batched"):
            de = case[f"final_energy_delta_{which}_ha"]
            assert de <= ENERGY_TOL_HA, (
                f"{case['system']}: {which} final energy differs from "
                f"baseline by {de:.2e} Ha"
            )
        assert case["scf_iters_equal"], (
            f"{case['system']}: SCF iteration counts diverged across "
            f"configs: "
            + ", ".join(
                f"{k}={v['scf_iters']}" for k, v in case["runs"].items()
            )
        )
        for cfg in ("pr5-loop", "batched"):
            assert case["runs"][cfg]["workspace_hits"] > 0, (
                f"{case['system']}: the {cfg} workspace never served "
                f"an entry"
            )
    gly = results["cases"][0]
    if results["smoke"]:
        assert gly["speedup_batched"] >= MIN_BATCHED_SMOKE, (
            f"batched kernels sped glycine up only "
            f"{gly['speedup_batched']:.2f}x over the unaccelerated "
            f"baseline (smoke floor {MIN_BATCHED_SMOKE}x)"
        )
    else:
        assert gly["speedup_loop"] >= MIN_SPEEDUP, (
            f"integral caching+screening sped glycine up only "
            f"{gly['speedup_loop']:.2f}x (expected >= {MIN_SPEEDUP}x)"
        )
        assert gly["speedup_batched"] >= MIN_BATCHED_SPEEDUP, (
            f"batched kernels sped glycine up only "
            f"{gly['speedup_batched']:.2f}x over the unaccelerated "
            f"baseline (expected >= {MIN_BATCHED_SPEEDUP}x)"
        )
        assert gly["speedup_batched_vs_loop"] > 1.0, (
            f"batched kernels are not faster than the PR 5 loop "
            f"kernels ({gly['speedup_batched_vs_loop']:.2f}x)"
        )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small systems / few steps (CI gate)")
    ap.add_argument("--json", type=Path,
                    default=OUTPUT_DIR / "int_screening.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    table = format_results(results)
    print(table)
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_int_screening_speedup(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=False))
    table = format_results(results)
    record_output("int_screening", table)
    _write_json(results, OUTPUT_DIR / "int_screening.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
