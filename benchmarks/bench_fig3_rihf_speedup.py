"""Fig. 3 — RI-MP2 gradient execution time with and without the RI-HF
approximation, across small fragment sizes.

The paper (single A100, cc-pVDZ, glycine chains) shows the RI-HF
variant faster across all accessible sizes, with the largest speedups
(up to ~6x) for the smallest fragments, where four-center integrals
and their derivatives dominate. We measure the same two code paths on
a small-fragment series (water -> urea -> Gly_1, the AIMD-relevant
regime) and label each point with the speedup, as the figure does.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.basis import auto_auxiliary
from repro.mp2.rimp2_grad import (
    rimp2_gradient,
    rimp2_gradient_conventional_hf,
)
from repro.scf import rhf
from repro.systems import glycine_chain, urea_molecule, water_monomer

BASIS = "sto-3g"


def _series():
    return [
        ("water", water_monomer()),
        ("urea", urea_molecule()),
        ("Gly_1", glycine_chain(1)),
    ]


def test_fig3_rihf_vs_conventional_hf(run_once, record_output):
    def experiment():
        rows = []
        speedups = []
        for label, mol in _series():
            aux = auto_auxiliary(mol, BASIS)

            t0 = time.perf_counter()
            res_c = rhf(mol, BASIS, ri=False)
            rimp2_gradient_conventional_hf(res_c, aux=aux)
            t_nonri = time.perf_counter() - t0

            t0 = time.perf_counter()
            res_r = rhf(mol, BASIS, ri=True, aux=aux)
            rimp2_gradient(res_r)
            t_ri = time.perf_counter() - t0

            speedup = t_nonri / t_ri
            speedups.append(speedup)
            rows.append(
                (label, mol.natoms, f"{t_nonri:.2f}", f"{t_ri:.2f}",
                 f"{speedup:.1f}x")
            )
        table = format_table(
            ["fragment", "atoms", "HF+RI-MP2 grad s", "RI-HF+RI-MP2 grad s",
             "RI-HF speedup"],
            rows,
            title=(
                "Fig. 3 (scaled reproduction) — RI-MP2 gradients with vs "
                "without RI-HF\n(paper: up to 6x for small fragments on an "
                "A100, cc-pVDZ; four-center derivatives dominate small "
                "fragments)"
            ),
        )
        return table, speedups

    table, speedups = run_once(experiment)
    record_output("fig3_rihf_speedup", table)
    # RI-HF must win at every fragment size in the AIMD regime
    assert all(s > 1.0 for s in speedups)
    # and by a large factor for at least the bigger fragments
    assert max(speedups) > 4.0
