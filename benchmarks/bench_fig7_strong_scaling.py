"""Fig. 7 — strong scaling on Perlmutter and Frontier.

Paper setup:
* Perlmutter: 80-molecule paracetamol sphere (36 A diameter, one
  molecule per monomer), 64 -> 1,536 nodes, 91% parallel efficiency at
  the full machine.
* Frontier: 24,000-urea (4 molecules/monomer) on 1,024 -> 4,096 nodes
  (92% efficiency) and 44,532-urea on 6,164 -> 9,400 (87%).

Reproduction: the Perlmutter curve runs the real coordinator through
the event simulator at the paper's exact workload. The Frontier curve
runs at 1/8 linear scale by default (molecule count and node counts
both divided by 8, preserving polymers-per-GCD, which is what the
efficiency depends on); set REPRO_BENCH_SCALE=full for the paper's
sizes via the aggregate scheduler.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.cluster import (
    FRONTIER,
    PAPER_CALIBRATED,
    PERLMUTTER,
    parallel_efficiency,
    simulate_aimd,
    strong_scaling_curve,
    urea_workload,
)
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.systems import paracetamol_sphere, urea_cluster

PERLMUTTER_NODES = [64, 128, 256, 512, 1024, 1536]


def test_fig7_perlmutter_paracetamol(run_once, record_output):
    def experiment():
        mol = paracetamol_sphere(18.0)  # 36 A diameter sphere
        fs = FragmentedSystem.by_components(mol)
        rows = []
        times = []
        for nodes in PERLMUTTER_NODES:
            # with only ~80 monomers on thousands of GPUs, single big
            # trimers set the critical path: worker groups span a full
            # node (4 GPUs), as the paper's scheme allows (Sec. V-D)
            r = simulate_aimd(
                fs, PERLMUTTER, nodes, nsteps=3,
                r_dimer_bohr=20 * BOHR_PER_ANGSTROM,
                r_trimer_bohr=13 * BOHR_PER_ANGSTROM,
                mbe_order=3, cost_model=PAPER_CALIBRATED,
                replan_interval=4, gcds_per_worker=4,
            )
            times.append(r.time_per_step())
            rows.append((nodes, r.nworkers, f"{r.time_per_step():.3f}",
                         f"{r.worker_utilization:.2f}"))
        effs = [
            (times[0] / t) / (n / PERLMUTTER_NODES[0])
            for t, n in zip(times, PERLMUTTER_NODES)
        ]
        rows = [r + (f"{e * 100:.0f}%",) for r, e in zip(rows, effs)]
        table = format_table(
            ["nodes", "worker groups", "s/step", "utilization",
             "parallel eff."],
            rows,
            title=(
                f"Fig. 7 (Perlmutter) — paracetamol sphere, "
                f"{fs.nmonomers} monomers, real-coordinator event sim, "
                "4-GPU worker groups\n"
                "(paper: 91% efficiency at 1,536 nodes vs 64-node base)"
            ),
        )
        return table, effs

    table, effs = run_once(experiment)
    record_output("fig7_perlmutter", table)
    assert effs[0] == 1.0
    # paper: 91% at the full machine; high efficiency throughout
    assert all(e > 0.5 for e in effs)
    assert effs[-1] > 0.6


def test_fig7_frontier_urea(run_once, record_output, full_scale):
    def experiment():
        if full_scale:
            # paper-scale via the aggregate scheduler
            stats = urea_workload(24000)
            nodes = [1024, 2048, 4096]
            res = strong_scaling_curve(
                stats, FRONTIER, nodes, cost_model=PAPER_CALIBRATED
            )
            effs = parallel_efficiency(res)
            rows = [
                (r.nodes, f"{r.time_per_step_s / 60:.1f}",
                 f"{100 * e:.0f}%",
                 f"{100 * r.fraction_of_peak(FRONTIER):.0f}%")
                for r, e in zip(res, effs)
            ]
            title = (
                "Fig. 7 (Frontier, full scale, aggregate) — 24k urea\n"
                "(paper: 92% efficiency at 4,096 nodes; 62/61/56% of peak)"
            )
            table = format_table(
                ["nodes", "min/step", "parallel eff.", "% of peak"],
                rows, title=title,
            )
            return table, effs
        # 1/8-scale event simulation with the real coordinator
        mol = urea_cluster(3000)
        fs = FragmentedSystem.by_components(mol, group_size=4)
        nodes = [128, 256, 512]
        rows = []
        times = []
        fracs = []
        for n in nodes:
            r = simulate_aimd(
                fs, FRONTIER, n, nsteps=3,
                r_dimer_bohr=15.3 * BOHR_PER_ANGSTROM,
                r_trimer_bohr=15.3 * BOHR_PER_ANGSTROM,
                mbe_order=3, cost_model=PAPER_CALIBRATED,
                replan_interval=4,
            )
            times.append(r.time_per_step())
            frac = r.flop_rate_pflops / FRONTIER.peak_pflops(n)
            fracs.append(frac)
            rows.append(
                (n, r.nworkers, f"{r.time_per_step() / 60:.1f}",
                 f"{100 * frac:.0f}%")
            )
        effs = [(times[0] / t) / (n / nodes[0]) for t, n in zip(times, nodes)]
        rows = [r + (f"{100 * e:.0f}%",) for r, e in zip(rows, effs)]
        table = format_table(
            ["nodes", "GCDs", "min/step", "% of peak", "parallel eff."],
            rows,
            title=(
                f"Fig. 7 (Frontier, 1/8 scale) — 3,000-urea cluster, "
                f"{fs.nmonomers} monomers, real-coordinator event sim\n"
                "(paper at 8x size/nodes: 92% efficiency, 62->56% of peak)"
            ),
        )
        return table, effs

    table, effs = run_once(experiment)
    record_output("fig7_frontier", table)
    assert all(e > 0.5 for e in effs)
