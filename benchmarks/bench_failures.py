"""Failure-adjusted efficiency of the urea campaign under an MTBF sweep.

At 9,400 Frontier nodes a per-node MTBF of 40,000 h compounds into a
system MTBF of ~4.25 h — shorter than the paper's 3.16 h production
trajectory — so the headline strong-scaling numbers only survive
contact with reality if checkpoint/restart is priced in. This benchmark
projects the paper's urea campaign (`repro.cluster.aggregate`) across a
node sweep, then applies the Young-Daly checkpoint economics
(`repro.cluster.failures`) at each scale:

* efficiency with the **optimal** checkpoint interval vs a **naive**
  (far-too-frequent) one — the cost of getting the interval wrong;
* the *empirically* best interval from the seeded Monte-Carlo replay
  vs the analytic ``sqrt(2 delta M)`` estimate — the two must agree
  within 20% (the ISSUE acceptance criterion, also pinned in
  ``tests/test_cluster_failures.py``).

Runnable two ways:

* ``python benchmarks/bench_failures.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant) writing a JSON
  record under ``benchmarks/output/``;
* ``pytest benchmarks/bench_failures.py`` — the harness form used by
  the other paper benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.cluster import (  # noqa: E402
    FRONTIER,
    PAPER_CALIBRATED,
    NodeFailureModel,
    failure_adjusted_efficiency,
    optimal_interval,
    simulate_workload,
    urea_workload,
    young_daly_interval,
)

OUTPUT_DIR = Path(__file__).parent / "output"

#: replayed vs analytic optimal interval must agree to this factor
AGREEMENT_BAND = (0.8, 1.25)

#: the campaign length the paper's production run targets (3.16 h of
#: trajectory re-run 4x over an allocation)
CAMPAIGN_STEPS = 445


def run_experiment(smoke: bool = False) -> dict:
    nmolecules = 2000 if smoke else 63854
    node_counts = [256, 1024] if smoke else [512, 2048, 9400]
    mtbf_sweep = [10000.0, 40000.0] if smoke else [
        5000.0, 10000.0, 20000.0, 40000.0, 80000.0,
    ]
    stats = urea_workload(nmolecules)
    # the coordinator's serial trajectory write (cost model) is sub-second
    # even for the 63k system; a *campaign* checkpoint also quiesces the
    # asynchronous pipeline and captures distributed state, so the
    # Young-Daly delta is minutes, not milliseconds.  A delta that tiny
    # would also make the replay objective flat to within MC noise and
    # the "optimal interval" meaningless.
    trajectory_write_s = PAPER_CALIBRATED.checkpoint_cost_s(
        nmolecules * 8  # urea: 8 atoms per molecule
    )
    checkpoint_cost_s = 60.0
    results = {
        "smoke": smoke,
        "nmolecules": nmolecules,
        "campaign_steps": CAMPAIGN_STEPS,
        "checkpoint_cost_s": checkpoint_cost_s,
        "trajectory_write_s": trajectory_write_s,
        "restart_cost_s": 120.0,
        "rows": [],
        "interval_agreement": [],
    }
    for nodes in node_counts:
        proj = simulate_workload(
            stats, FRONTIER, nodes, nsteps=3, cost_model=PAPER_CALIBRATED
        )
        for mtbf_h in mtbf_sweep:
            model = NodeFailureModel(mtbf_hours=mtbf_h)
            eff_opt = failure_adjusted_efficiency(
                proj, model, checkpoint_cost_s, restart_cost_s=120.0,
                nsteps_total=CAMPAIGN_STEPS,
            )
            tau_yd = young_daly_interval(
                model.system_mtbf_s(nodes), checkpoint_cost_s
            )
            eff_naive = failure_adjusted_efficiency(
                proj, model, checkpoint_cost_s, restart_cost_s=120.0,
                nsteps_total=CAMPAIGN_STEPS, interval_s=tau_yd / 20.0,
            )
            results["rows"].append({
                "nodes": nodes,
                "node_mtbf_hours": mtbf_h,
                "system_mtbf_s": model.system_mtbf_s(nodes),
                "tau_young_daly_s": tau_yd,
                "efficiency_optimal": eff_opt,
                "efficiency_naive": eff_naive,
            })
    # replay-vs-analytic agreement at the headline scale
    nodes = node_counts[-1]
    proj = simulate_workload(
        stats, FRONTIER, nodes, nsteps=3, cost_model=PAPER_CALIBRATED
    )
    work_s = proj.time_per_step_s * CAMPAIGN_STEPS
    for mtbf_h in mtbf_sweep:
        model = NodeFailureModel(mtbf_hours=mtbf_h)
        mtbf_s = model.system_mtbf_s(nodes)
        tau_yd = young_daly_interval(mtbf_s, checkpoint_cost_s)
        best_replay, replayed = optimal_interval(
            work_s, mtbf_s, checkpoint_cost_s, restart_cost_s=120.0,
            # the full 33-point grid in both modes: grid spacing is
            # 8^(2/32) = 1.14x, comfortably inside the 20% band the
            # agreement gate asserts (17 points would quantize at 1.30x).
            # The objective is <1% deep across that band, so the argmin
            # needs the MC error well below that: 64 replicas.
            method="replay", seed=0, replicas=64,
            grid_points=33,
        )
        results["interval_agreement"].append({
            "nodes": nodes,
            "node_mtbf_hours": mtbf_h,
            "system_mtbf_s": mtbf_s,
            "tau_young_daly_s": tau_yd,
            "tau_replay_s": best_replay,
            "ratio": best_replay / tau_yd,
            "replay_failures": replayed.failures,
            "replay_efficiency": replayed.efficiency,
        })
    return results


def format_results(results: dict) -> str:
    rows = []
    for r in results["rows"]:
        rows.append((
            r["nodes"],
            f"{r['node_mtbf_hours']:.0f}",
            f"{r['system_mtbf_s'] / 3600.0:.2f}",
            f"{r['tau_young_daly_s'] / 60.0:.1f}",
            f"{r['efficiency_optimal']:.3f}",
            f"{r['efficiency_naive']:.3f}",
        ))
    sweep = format_table(
        ["nodes", "node MTBF h", "sys MTBF h", "tau* min",
         "eff(opt)", "eff(naive)"],
        rows,
        title="Failure-adjusted campaign efficiency — urea workload",
    )
    rows = [
        (
            a["nodes"],
            f"{a['node_mtbf_hours']:.0f}",
            f"{a['tau_young_daly_s'] / 60.0:.1f}",
            f"{a['tau_replay_s'] / 60.0:.1f}",
            f"{a['ratio']:.3f}",
            a["replay_failures"],
        )
        for a in results["interval_agreement"]
    ]
    agree = format_table(
        ["nodes", "node MTBF h", "tau_YD min", "tau_replay min",
         "ratio", "failures"],
        rows,
        title="Replayed vs Young-Daly optimal checkpoint interval",
    )
    return sweep + "\n\n" + agree


def check_results(results: dict) -> None:
    """Acceptance gates for the failure economics."""
    lo, hi = AGREEMENT_BAND
    for a in results["interval_agreement"]:
        assert lo < a["ratio"] < hi, (
            f"replayed optimal interval {a['tau_replay_s']:.0f}s is "
            f"{a['ratio']:.2f}x the Young-Daly estimate "
            f"{a['tau_young_daly_s']:.0f}s at MTBF "
            f"{a['node_mtbf_hours']}h (band {lo}-{hi})"
        )
    for r in results["rows"]:
        assert 0.0 < r["efficiency_naive"] <= r["efficiency_optimal"] < 1.0, (
            f"naive interval must not beat the optimal one: {r}"
        )
    by_nodes: dict[int, list] = {}
    for r in results["rows"]:
        by_nodes.setdefault(r["nodes"], []).append(r)
    for nodes, rows in by_nodes.items():
        effs = [r["efficiency_optimal"]
                for r in sorted(rows, key=lambda r: r["node_mtbf_hours"])]
        assert effs == sorted(effs), (
            f"efficiency must improve with node MTBF at {nodes} nodes: "
            f"{effs}"
        )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small workload / coarse grids (CI gate)")
    ap.add_argument("--json", type=Path,
                    default=OUTPUT_DIR / "failures.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    print(format_results(results))
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_failure_economics(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=True))
    table = format_results(results)
    record_output("failures", table)
    _write_json(results, OUTPUT_DIR / "failures.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
