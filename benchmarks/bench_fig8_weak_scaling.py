"""Fig. 8 — weak scaling on Frontier: growing urea spheres at constant
work per GCD, 512 -> 4,096 nodes (4,096 -> 32,768 GCDs) in the paper.

The paper holds ~4 polymers per GCD. At 1/8 machine scale the spheres
are small and growth is quantized (whole lattice shells), so the
realized work per GCD wobbles between points; weak efficiency is
therefore reported as the *work-throughput per GCD* relative to the
base point,

    eff_i = (work_i / gcds_i / t_i) / (work_0 / gcds_0 / t_0),

which reduces to the usual t_0/t_i when the workload match is exact.
Expected shape: near-flat, with modest degradation at the largest
count (paper: slight drop at 4,096 nodes from load-balancing
communication).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.cluster import FRONTIER, PAPER_CALIBRATED, simulate_aimd
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem, build_plan
from repro.systems import urea_cluster

GCD_COUNTS = [256, 512, 1024, 2048]
CUTOFF_A = 9.0  # tighter than the paper's 15.3 A so 1/8-scale spheres
# still carry bulk-like polymer populations


def _plan_cost(plan) -> float:
    """Modeled single-GCD cost (s) of one full MBE step."""
    cm = PAPER_CALIBRATED
    elec = {1: 128, 2: 256, 3: 384}
    return sum(cm.time_on(elec[len(key)], FRONTIER) for key in plan.fragments)


def _grow_until(predicate):
    """Grow a urea sphere until ``predicate(fs, plan)`` holds."""
    nmol = 16
    for _ in range(80):
        fs = FragmentedSystem.by_components(urea_cluster(nmol), group_size=4)
        plan = build_plan(
            fs, CUTOFF_A * BOHR_PER_ANGSTROM, CUTOFF_A * BOHR_PER_ANGSTROM,
            order=3,
        )
        if predicate(fs, plan):
            return fs, plan
        nmol = int(nmol * 1.1) + 4
    raise RuntimeError("sphere growth did not converge")


def test_fig8_weak_scaling(run_once, record_output):
    def experiment():
        rows = []
        rates = []  # work per GCD per second
        # base point: ~4 polymers per GCD at the smallest GCD count
        fs0, plan0 = _grow_until(
            lambda fs, plan: plan.npolymers >= 4 * GCD_COUNTS[0]
        )
        target = _plan_cost(plan0) / GCD_COUNTS[0]
        for gcds in GCD_COUNTS:
            nodes = gcds // FRONTIER.gcds_per_node
            fs, plan = _grow_until(
                lambda fs, plan, g=gcds: _plan_cost(plan) / g >= target
            )
            work = _plan_cost(plan) / gcds
            r = simulate_aimd(
                fs, FRONTIER, nodes, nsteps=3,
                r_dimer_bohr=CUTOFF_A * BOHR_PER_ANGSTROM,
                r_trimer_bohr=CUTOFF_A * BOHR_PER_ANGSTROM,
                mbe_order=3, cost_model=PAPER_CALIBRATED,
                replan_interval=4,
            )
            rates.append(work / r.time_per_step())
            rows.append(
                (gcds, fs.nmonomers, plan.npolymers,
                 f"{plan.npolymers / gcds:.1f}", f"{work:.0f}",
                 f"{r.time_per_step():.1f}",
                 f"{100 * r.flop_rate_pflops / FRONTIER.peak_pflops(nodes):.0f}%")
            )
        effs = [rate / rates[0] for rate in rates]
        rows = [r + (f"{100 * e:.0f}%",) for r, e in zip(rows, effs)]
        table = format_table(
            ["GCDs", "monomers", "polymers", "poly/GCD", "work/GCD (s)",
             "s/step", "% of peak", "weak eff."],
            rows,
            title=(
                "Fig. 8 (1/8 scale) — weak scaling, urea spheres at "
                "constant work per GCD\n(paper: near-flat 512->4,096 nodes "
                "with a slight drop at the largest count)"
            ),
        )
        return table, effs

    table, effs = run_once(experiment)
    record_output("fig8_weak_scaling", table)
    # near-flat work throughput per GCD across an 8x machine growth
    assert all(0.7 < e < 1.3 for e in effs)
