"""Table III — HF + RI-MP2 gradient wall time on glycine chains Gly_n.

The paper compares four conventional CPU packages (Orca, Q-Chem,
GAMESS, NWChem; no fragmentation) against EXESS's MBE3/RI path on GPUs
for Gly_10/15/20 with cc-pVDZ, showing ~3 orders of magnitude. We
regenerate the *structure* of the comparison at laptop scale
(Gly_1..3, STO-3G; see DESIGN.md): the conventional four-center path
(Gly_1 only — its cost wall is itself part of the message) stands in
for the CPU packages, the unfragmented RI path for a single GPU, and
the MBE3/RI path (amino-acid monomers, paper cutoffs 20 A / 13 A) for
the full method. Expected shape: conventional >> RI >= MBE3 at equal
sizes, with the conventional path infeasible beyond tiny chains.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.basis import auto_auxiliary
from repro.calculators import RIMP2Calculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import build_plan, mbe_energy_gradient
from repro.mp2.rimp2_grad import rimp2_gradient, rimp2_gradient_conventional_hf
from repro.scf import rhf
from repro.systems import glycine_chain, glycine_fragmented

BASIS = "sto-3g"
CHAINS = (1, 2, 3)
CONVENTIONAL_MAX = 1  # the four-center cost wall
R_DIMER = 20.0 * BOHR_PER_ANGSTROM
R_TRIMER = 13.0 * BOHR_PER_ANGSTROM


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_table3_gradient_walltimes(run_once, record_output):
    def experiment():
        rows = []
        times: dict[tuple[int, str], float] = {}
        for n in CHAINS:
            mol = glycine_chain(n)
            t_conv = None
            if n <= CONVENTIONAL_MAX:
                aux = auto_auxiliary(mol, BASIS)

                def conv():
                    res = rhf(mol, BASIS, ri=False)
                    rimp2_gradient_conventional_hf(res, aux=aux)

                t_conv = _time(conv)

            def ri():
                res = rhf(mol, BASIS, ri=True)
                rimp2_gradient(res)

            t_ri = _time(ri)
            fs = glycine_fragmented(n)
            calc = RIMP2Calculator(basis=BASIS)

            def mbe():
                plan = build_plan(fs, R_DIMER, R_TRIMER, order=3)
                mbe_energy_gradient(fs, plan, calc)

            t_mbe = _time(mbe)
            times[(n, "conv")] = t_conv
            times[(n, "ri")] = t_ri
            times[(n, "mbe")] = t_mbe
            rows.append(
                (
                    f"Gly_{n}",
                    mol.natoms,
                    f"{t_conv:.1f}" if t_conv is not None else "> feasible",
                    f"{t_ri:.2f}",
                    f"{t_mbe:.2f}",
                    f"{t_conv / t_ri:.0f}x" if t_conv else "-",
                )
            )
        table = format_table(
            ["System", "atoms", "conventional s", "RI s", "MBE3/RI s",
             "RI speedup"],
            rows,
            title=(
                "Table III (scaled reproduction) — HF+RI-MP2 gradient wall "
                f"time, {BASIS}\n(paper: Gly_10/15/20 cc-pVDZ; conventional "
                "CPU packages 297-6213 s vs MBE3 on GPUs 1.1-6.4 s, ~3 "
                "orders of magnitude)"
            ),
        )
        return table, times

    table, times = run_once(experiment)
    record_output("table3_glycine", table)
    # shape: conventional is more than an order of magnitude slower than
    # the RI path at the same size
    assert times[(1, "conv")] > 10 * times[(1, "ri")]
    # RI and MBE3 remain feasible at every size measured
    assert all(times[(n, "ri")] < times[(1, "conv")] for n in CHAINS)
