"""Table V / Sec. VII-C — the record runs: million-electron AIMD steps at
~1 EFLOP/s on 9,400 Frontier nodes.

Paper numbers:
* 44,532 urea molecules (1,425,024 e-): 13.7 min/step, 932.6 PFLOP/s.
* 63,854 urea molecules (2,043,328 e-): 25.6 min/step, 1006.7 PFLOP/s
  = 59% of Frontier's sustained FP64 peak; 1.55 ZFLOP per step;
  >2.8 million polymer contributions per step.

Reproduction: the polymer populations are enumerated from the real urea
lattice geometry (centroid level) at the paper's 15.3 A cutoffs; per-
polymer costs come from the calibrated model; the step is scheduled on
the modeled 9,400-node machine. The cost model is calibrated once on
the 63k anchor (see `PAPER_CALIBRATED`); the 44k row and all scaling
figures are then predictions.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import (
    FRONTIER,
    PAPER_CALIBRATED,
    simulate_workload,
    urea_workload,
)

PAPER = {
    44532: (13.7, 932.6),
    63854: (25.6, 1006.7),
}

ATTRIBUTES = """Table I — performance attributes of this reproduction
  Category of achievement .... scalability, peak performance, time-to-solution
  Type of method used ........ MBE3 / RI-MP2 ab initio molecular dynamics
  Results reported based on .. whole-application simulation (event/aggregate)
  Precision reported ......... double precision (FP64 cost model)
  System scale ............... full modeled machine (9,400 Frontier nodes)
  Measurement mechanism ...... virtual timers + 2mnk GEMM FLOP accounting"""


def test_table5_record_runs(run_once, record_output):
    def experiment():
        rows = []
        measured = {}
        for nmol, (p_min, p_pf) in PAPER.items():
            stats = urea_workload(nmol)
            res = simulate_workload(
                stats, FRONTIER, 9400, nsteps=3, cost_model=PAPER_CALIBRATED
            )
            frac = res.fraction_of_peak(FRONTIER)
            measured[nmol] = (res.time_per_step_s / 60, res.flop_rate_pflops, frac)
            rows.append(
                (
                    f"{nmol:,}",
                    f"{stats.nmonomers * stats.electrons_per_monomer:,}",
                    f"{stats.npolymers:,}",
                    f"{res.time_per_step_s / 60:.1f}",
                    f"{p_min}",
                    f"{res.flop_rate_pflops:.0f}",
                    f"{p_pf}",
                    f"{100 * frac:.0f}%",
                )
            )
        table = format_table(
            ["urea molecules", "electrons", "polymers/step", "min/step",
             "paper min", "PFLOP/s", "paper PF", "% of peak"],
            rows,
            title=(
                "Table V — record-performance AIMD steps on 9,400 Frontier "
                "nodes (aggregate simulation, calibrated once on the 63k row)"
            ),
        )
        return ATTRIBUTES + "\n\n" + table, measured

    out, measured = run_once(experiment)
    record_output("table5_records", out)
    t63, pf63, frac63 = measured[63854]
    t44, pf44, frac44 = measured[44532]
    # the million-electron and ~EFLOP/s "barriers" of the title
    assert pf63 > 1000.0
    assert 0.5 < frac63 < 0.7  # paper: 59%
    assert 20.0 < t63 < 32.0  # paper: 25.6 min
    # the smaller system is proportionally faster
    assert t44 < t63
