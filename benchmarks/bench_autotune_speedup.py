"""Sec. V-G numbers — end-to-end speedup from GEMM auto-tuning in AIMD.

The paper reports 13% (urea trimer) and 12% (paracetamol trimer) AIMD
speedups from runtime variant tuning on a single MI250X GCD, exploiting
the fact that the same GEMM shapes recur 10-100x per gradient and again
every time step. We run repeated RI-MP2 gradients of a urea monomer
(the AIMD inner loop) with tuning enabled vs disabled and report the
measured gain on this machine's BLAS. CPU BLAS variant spreads are much
smaller than ROCm's (Table IV), so single-digit percentages are the
expected shape here.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.gemm import GLOBAL_TUNER, set_autotune
from repro.mp2.rimp2_grad import rimp2_gradient
from repro.scf import rhf
from repro.systems import urea_molecule

BASIS = "sto-3g"
STEPS = 4


def _run_steps(mol) -> float:
    t0 = time.perf_counter()
    for _ in range(STEPS):
        res = rhf(mol, BASIS, ri=True)
        rimp2_gradient(res)
    return time.perf_counter() - t0


def test_autotune_aimd_speedup(run_once, record_output):
    mol = urea_molecule()

    def experiment():
        GLOBAL_TUNER.reset()
        set_autotune(False)
        _run_steps(mol)  # warm BLAS/caches
        t_off = _run_steps(mol)
        GLOBAL_TUNER.reset()
        set_autotune(True)
        _run_steps(mol)  # tuning trials happen here (in-situ, not wasted)
        t_on = _run_steps(mol)
        set_autotune(True)
        shapes_tuned = len(GLOBAL_TUNER.best)
        gain = (t_off / t_on - 1.0) * 100.0
        table = format_table(
            ["configuration", f"{STEPS} gradient steps (s)"],
            [
                ("auto-tuning off", f"{t_off:.2f}"),
                ("auto-tuning on (post-trials)", f"{t_on:.2f}"),
                ("speedup", f"{gain:+.1f}%"),
                ("GEMM shapes tuned", shapes_tuned),
            ],
            title=(
                "Sec. V-G (CPU reproduction) — AIMD speedup from GEMM "
                "auto-tuning\n(paper: +13% urea / +12% paracetamol on an "
                "MI250X GCD)"
            ),
        )
        return table, gain, shapes_tuned

    table, gain, shapes_tuned = run_once(experiment)
    record_output("autotune_speedup", table)
    assert shapes_tuned > 0
    # tuned execution must not be meaningfully slower than untuned
    assert gain > -10.0
