"""Ablation — tying the simulator's cost model to the real engine.

The exascale projections assign per-polymer FLOPs from closed-form
expressions (`FragmentCostModel`). Here we measure the *actual* counted
GEMM FLOPs of the real RI-MP2 gradient engine (the 2mnk runtime
counter, paper Sec. VI-C) across fragment sizes, calibrate the model's
GEMM scale on the smallest fragment, and check the prediction quality
on the rest — the same calibrate-once-predict-elsewhere discipline used
for the Table V anchor.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.basis import BasisSet, auto_auxiliary
from repro.cluster import FragmentCostModel, calibrate_gemm
from repro.gemm import count_flops
from repro.mp2.rimp2_grad import rimp2_gradient
from repro.scf import rhf
from repro.systems import glycine_chain, urea_molecule, water_monomer

BASIS = "sto-3g"


def test_engine_flops_vs_cost_model(run_once, record_output):
    def experiment():
        systems = [
            ("water", water_monomer()),
            ("urea", urea_molecule()),
            ("Gly_1", glycine_chain(1)),
            ("Gly_2", glycine_chain(2)),
        ]
        measured = []
        ratios = {"bf": [], "aux": []}
        for label, mol in systems:
            bs = BasisSet.build(mol, BASIS)
            aux = auto_auxiliary(mol, BASIS)
            ratios["bf"].append(bs.nbf / mol.nelectrons)
            ratios["aux"].append(aux.nbf / bs.nbf)
            with count_flops() as c:
                res = rhf(mol, BASIS, ri=True)
                rimp2_gradient(res)
            measured.append((label, mol.nelectrons, c.flops))
        base = FragmentCostModel(
            bf_ratio=sum(ratios["bf"]) / len(ratios["bf"]),
            aux_ratio=sum(ratios["aux"]) / len(ratios["aux"]),
        )
        cal = calibrate_gemm(base, [(measured[0][1], measured[0][2])])
        rows = []
        errors = []
        for label, ne, flops in measured:
            pred = cal.gemm_flops(ne)
            err = pred / flops
            errors.append(err)
            rows.append(
                (label, ne, f"{flops:,}", f"{pred:,.0f}", f"{err:.2f}x")
            )
        table = format_table(
            ["fragment", "electrons", "counted GEMM FLOPs",
             "model prediction", "pred/measured"],
            rows,
            title=(
                "Cost-model calibration — real engine 2mnk counter vs "
                "FragmentCostModel\n(calibrated on water only; the rest are "
                "predictions)"
            ),
        )
        return table, errors

    table, errors = run_once(experiment)
    record_output("engine_flops_calibration", table)
    # calibration point is exact; predictions stay within a small factor
    assert abs(errors[0] - 1.0) < 1e-6
    assert all(0.2 < e < 5.0 for e in errors[1:])
