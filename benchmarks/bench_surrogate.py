"""Surrogate-accelerated MBE tail: full-solve savings vs trajectory error.

The MBE's polymer tail (dimers/trimers) dominates the per-step solve
count, yet along an MD trajectory the same fragment *classes* are
re-solved at geometries that differ by fractions of a bohr.
`repro.surrogate` learns each class online (kernel-ridge committee over
an invariant descriptor) and serves tail contributions whenever the
uncertainty gate — committee energy spread plus the GP posterior sigma
of the full-data fit — is below the per-order tolerance. Every serve
folds ``|coefficient| * tol`` into the run's neglected-error ceiling,
the same accounting discipline the Schwarz screener uses.

This benchmark runs the same glycine-chain trajectory twice (surrogate
off = reference, surrogate on) and gates on both sides of the bargain:

* **savings** — the surrogate run must cut the number of full polymer
  solves by at least 1.3x (these are the solves that are full RI-MP2
  evaluations in production; the smoke variant counts the identical
  task stream against the classical stand-in potential, where counts
  are deterministic and CI-fast — the same convention as ``bench_mts``);
* **honesty** — the total-energy deviation of the surrogate trajectory
  from the reference must stay within the accumulated gated bound
  ``sum(|c| * tol)``, i.e. the reported error ceiling must actually
  ceiling the realized error.

Runnable two ways:

* ``python benchmarks/bench_surrogate.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant and uploads the JSON
  record as an artifact);
* ``pytest benchmarks/bench_surrogate.py`` — the harness form used by
  the other paper benchmarks (full variant, RI-MP2 fragments).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.calculators import (  # noqa: E402
    PairwisePotentialCalculator,
    RIMP2Calculator,
)
from repro.constants import BOHR_PER_ANGSTROM  # noqa: E402
from repro.md.aimd import run_aimd  # noqa: E402
from repro.md.integrators import maxwell_boltzmann_velocities  # noqa: E402
from repro.surrogate import SurrogateManager  # noqa: E402
from repro.systems import glycine_fragmented  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

#: the savings gate: full polymer solves (reference / surrogate)
SOLVE_RATIO = 1.3

#: dimer disagreement tolerance (Ha) for the gated serves.  The smoke
#: variant's classical surface is cheap to learn, so the gate can be
#: tight; the RI-MP2 surface needs a looser gate before the small online
#: window brings the GP posterior sigma down (the honesty check below
#: scales with the same tolerance, so looseness is still accounted for)
TOL_DIMER_SMOKE = 5.0e-4
TOL_DIMER_FULL = 2.0e-3


class _CountingCalculator:
    """Counts monomer and polymer solves around any inner calculator."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.monomer_solves = 0
        self.polymer_solves = 0

    def energy_gradient(self, mol):
        key = getattr(mol, "frag_key", None)
        if key is not None and len(key) > 1:
            self.polymer_solves += 1
        else:
            self.monomer_solves += 1
        return self.inner.energy_gradient(mol)


def _trajectory(system, calc, v0, nsteps: int, dt_fs: float,
                surrogate: SurrogateManager | None) -> dict:
    counter = _CountingCalculator(calc)
    t0 = time.perf_counter()
    traj = run_aimd(
        system, counter, nsteps=nsteps, dt_fs=dt_fs,
        r_dimer_bohr=6.0 * BOHR_PER_ANGSTROM, mbe_order=2,
        replan_interval=4, velocities=v0.copy(), surrogate=surrogate,
    )
    wall = time.perf_counter() - t0
    out = {
        "monomer_solves": counter.monomer_solves,
        "polymer_solves": counter.polymer_solves,
        "wall_s": wall,
        "drift_ha_per_fs": traj.energy_drift(),
        "final_total_energy": float(traj.total[-1]),
        "total_energy": [float(e) for e in traj.total],
    }
    if surrogate is not None:
        out["surrogate"] = surrogate.stats()
    return out


def run_experiment(smoke: bool = False) -> dict:
    """The same trajectory with the surrogate tail off, then on."""
    if smoke:
        system = glycine_fragmented(4)
        calc = PairwisePotentialCalculator()
        nsteps, dt_fs = 40, 0.25
        tol_dimer = TOL_DIMER_SMOKE
    else:
        system = glycine_fragmented(2)
        calc = RIMP2Calculator(basis="sto-3g")
        nsteps, dt_fs = 24, 0.25
        tol_dimer = TOL_DIMER_FULL
    v0 = maxwell_boltzmann_velocities(
        system.parent.masses_au, 300.0, seed=7
    )
    surrogate = SurrogateManager(
        tol_dimer=tol_dimer, min_train=6, seed=7
    )
    reference = _trajectory(system, calc, v0, nsteps, dt_fs, None)
    surr = _trajectory(system, calc, v0, nsteps, dt_fs, surrogate)
    e_ref = np.asarray(reference.pop("total_energy"))
    e_sur = np.asarray(surr.pop("total_energy"))
    return {
        "smoke": smoke,
        "system": f"glycine-{'4' if smoke else '2'}mer",
        "calculator": type(calc).__name__,
        "nsteps": nsteps,
        "dt_fs": dt_fs,
        "tol_dimer": tol_dimer,
        "reference": reference,
        "surrogate_run": surr,
        "solve_ratio": reference["polymer_solves"]
        / max(surr["polymer_solves"], 1),
        "max_energy_deviation_ha": float(np.abs(e_ref - e_sur).max()),
        "gated_bound_ha": surr["surrogate"]["neglected_bound"],
    }


def format_results(results: dict) -> str:
    ref, sur = results["reference"], results["surrogate_run"]
    st = sur["surrogate"]
    rows = [
        ("off", ref["polymer_solves"], "-", "-",
         f"{ref['drift_ha_per_fs']:.2e}", f"{ref['wall_s']:.2f}"),
        ("on", sur["polymer_solves"], st["served"],
         f"{results['solve_ratio']:.2f}x",
         f"{sur['drift_ha_per_fs']:.2e}", f"{sur['wall_s']:.2f}"),
    ]
    table = format_table(
        ["surrogate", "full solves", "served", "ratio",
         "drift Ha/fs", "wall s"],
        rows,
        title=(f"surrogate MBE tail — {results['system']} / "
               f"{results['calculator']}, {results['nsteps']} steps"),
    )
    return table + (
        f"\nmax |E_sur - E_ref| = "
        f"{results['max_energy_deviation_ha']:.2e} Ha, gated ceiling "
        f"{results['gated_bound_ha']:.2e} Ha "
        f"({st['refused_cold']} cold / {st['refused_uncertain']} "
        f"uncertain / {st['refused_refresh']} refresh refusals)"
    )


def check_results(results: dict) -> None:
    """Acceptance gates: real solve savings, honest error ceiling."""
    assert results["solve_ratio"] >= SOLVE_RATIO, (
        f"surrogate cut full polymer solves only "
        f"{results['solve_ratio']:.2f}x (expected >= {SOLVE_RATIO}x)"
    )
    assert results["surrogate_run"]["surrogate"]["served"] > 0, (
        "surrogate never served — the gate never opened"
    )
    dev = results["max_energy_deviation_ha"]
    bound = results["gated_bound_ha"]
    assert dev <= bound, (
        f"trajectory deviated {dev:.2e} Ha from the surrogate-off "
        f"reference, exceeding the accumulated gated bound {bound:.2e}"
    )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="classical stand-in potential / count gate (CI)")
    ap.add_argument("--json", type=Path,
                    default=OUTPUT_DIR / "surrogate.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    print(format_results(results))
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_surrogate_savings(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=False))
    record_output("surrogate", format_results(results))
    _write_json(results, OUTPUT_DIR / "surrogate.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
