"""Ablation (paper future work, Sec. VII-A) — smooth polymer-cutoff
switching vs hard cutoffs.

The paper attributes part of its Fig. 6 total-energy fluctuations to
"polymer corrections dropping in and out as the distance between the
polymers fluctuates around the cutoff" and plans a smooth transition as
future work. We implement that transition (C2 quintic switch on each
correction, exact gradients — `repro.frag.switching`) and measure NVE
drift/fluctuation with the cutoff deliberately placed on a populated
neighbor distance so crossings actually happen.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyze_conservation, format_table
from repro.calculators import PairwisePotentialCalculator
from repro.chem.geometry import pairwise_distances
from repro.frag import FragmentedSystem
from repro.md import run_aimd
from repro.systems import water_cluster


def test_smooth_cutoff_conservation(run_once, record_output):
    mol = water_cluster(8, seed=23)
    fs = FragmentedSystem.by_components(mol)
    calc = PairwisePotentialCalculator()
    # place the cutoff exactly on a populated centroid distance so
    # thermal motion drives corrections across it
    d = pairwise_distances(fs.centroids())
    pairs = np.sort(d[np.triu_indices_from(d, k=1)])
    r_cut = float(np.median(pairs)) * 1.001

    def experiment():
        kw = dict(
            nsteps=250, dt_fs=0.5, r_dimer_bohr=r_cut, mbe_order=2,
            temperature_k=250, seed=5,
        )
        hard = run_aimd(fs, calc, replan_interval=1, **kw)
        smooth = run_aimd(fs, calc, smooth_switching=True, **kw)
        reps = {}
        rows = []
        for label, traj in (("hard cutoff", hard), ("smooth switching", smooth)):
            rep = analyze_conservation(
                np.array(traj.times_fs), np.array(traj.potential),
                np.array(traj.kinetic),
            )
            reps[label] = rep
            rows.append(
                (label, f"{rep.drift_hartree_per_fs:.2e}",
                 f"{rep.rms_fluctuation_hartree:.2e}",
                 f"{rep.max_deviation_hartree:.2e}")
            )
        table = format_table(
            ["mode", "drift Ha/fs", "RMS fluct Ha", "max dev Ha"],
            rows,
            title=(
                "Smooth cutoff switching ablation — 125 fs NVE with the "
                "dimer cutoff on a populated neighbor distance\n(paper "
                "Fig. 6 discussion: hard cutoffs cause corrections to drop "
                "in and out; switching is the proposed fix)"
            ),
        )
        return table, reps

    table, reps = run_once(experiment)
    record_output("smooth_cutoff_ablation", table)
    hard = reps["hard cutoff"]
    smooth = reps["smooth switching"]
    # switching reduces the worst-case cutoff-crossing jump and does not
    # worsen the overall fluctuation; both drifts stay at noise level
    assert smooth.max_deviation_hartree <= hard.max_deviation_hartree
    assert smooth.rms_fluctuation_hartree <= 1.2 * hard.rms_fluctuation_hartree
    assert abs(smooth.drift_hartree_per_fs) < 1e-6
    assert abs(hard.drift_hartree_per_fs) < 1e-6
