"""Fig. 5 — dimer and trimer MBE energy contributions versus centroid
distance, and the cutoff determination they imply.

The paper evaluates every dimer/trimer contribution of the 6PQ5 starting
geometry and picks cutoffs where |dE| falls below 0.1 kJ/mol for good
(22 A dimers / 9 A trimers for 6PQ5). We regenerate the experiment
twice: with real RI-MP2 on a water cluster (quantum decay curve,
laptop-scale), and with the three-body surrogate on the PrP-like fibril
(the paper's actual geometry class, full polymer sets). Expected shape:
contributions decay steeply with distance, trimers decay faster than
dimers, and thresholds yield finite cutoffs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.calculators import PairwisePotentialCalculator, RIMP2Calculator
from repro.frag import (
    FragmentedSystem,
    dimer_contributions,
    trimer_contributions,
)
from repro.systems import prp_like_fibril, water_cluster


def _bin_curve(curve, edges):
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (curve.distances_angstrom >= lo) & (curve.distances_angstrom < hi)
        if mask.any():
            rows.append(
                (f"{lo:.0f}-{hi:.0f}",
                 int(mask.sum()),
                 f"{curve.abs_contributions_kjmol[mask].max():.4f}",
                 f"{np.median(curve.abs_contributions_kjmol[mask]):.4f}")
            )
    return rows


def test_fig5_quantum_water(run_once, record_output):
    """Real RI-MP2 contributions on an 8-water cluster."""
    mol = water_cluster(8, seed=13)
    fs = FragmentedSystem.by_components(mol)
    calc = RIMP2Calculator(basis="sto-3g")

    def experiment():
        dc = dimer_contributions(fs, calc, reference=0)
        edges = [0, 4, 6, 8, 12]
        table = format_table(
            ["centroid distance (A)", "dimers", "max |dE| kJ/mol",
             "median |dE| kJ/mol"],
            _bin_curve(dc, edges),
            title=(
                "Fig. 5 (quantum, water-8, RI-MP2/sto-3g) — dimer "
                "contributions vs distance"
            ),
        ) + f"\n0.1 kJ/mol dimer cutoff: {dc.cutoff(0.1):.1f} A"
        return table, dc

    table, dc = run_once(experiment)
    record_output("fig5_contributions_quantum", table)
    # decay with distance: nearest dimer dominates the farthest
    order = np.argsort(dc.distances_angstrom)
    contrib = dc.abs_contributions_kjmol[order]
    assert contrib[0] > contrib[-1]
    assert contrib[:2].max() > 3 * contrib[-2:].max() / 2


def test_fig5_fibril_surrogate(run_once, record_output):
    """Full dimer+trimer curves on the 6PQ5-scale fibril (surrogate)."""
    fs = prp_like_fibril()
    calc = PairwisePotentialCalculator(at_strength=20.0)

    def experiment():
        dc = dimer_contributions(fs, calc, reference=0)
        tc = trimer_contributions(fs, calc, reference=0, r_max_angstrom=12.0)
        r_dim = dc.cutoff(1e-4)
        r_tri = tc.cutoff(1e-4)
        edges = [0, 5, 10, 15, 20, 30]
        lines = [
            format_table(
                ["distance (A)", "dimers", "max |dE|", "median |dE|"],
                _bin_curve(dc, edges),
                title="Fig. 5 (fibril surrogate) — dimer contributions",
            ),
            "",
            format_table(
                ["distance (A)", "trimers", "max |dE|", "median |dE|"],
                _bin_curve(tc, edges),
                title="trimer contributions",
            ),
            "",
            f"cutoffs at 1e-4 kJ/mol: dimers {r_dim:.1f} A, trimers "
            f"{r_tri:.1f} A (paper 6PQ5 at 0.1 kJ/mol: 22 A / 9 A; "
            "trimer cutoff < dimer cutoff)",
        ]
        return "\n".join(lines), dc, tc, r_dim, r_tri

    table, dc, tc, r_dim, r_tri = run_once(experiment)
    record_output("fig5_contributions_fibril", table)
    # the paper's qualitative findings: finite cutoffs, trimers tighter
    assert 0 < r_tri < r_dim
