"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and
prints it (also saved under ``benchmarks/output/``). Timings are taken
with pytest-benchmark in pedantic single-round mode because each
"benchmark" is an experiment, not a microkernel.

Scale note: laptop-scale stand-ins are used where the paper used
Frontier/Perlmutter (see DESIGN.md for the substitution table); the
environment variable ``REPRO_BENCH_SCALE=full`` switches the simulator
benchmarks to the paper's full system sizes (slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


@pytest.fixture
def record_output():
    """Print a result table and persist it under benchmarks/output/."""

    def _record(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture
def run_once(benchmark):
    """Execute an experiment exactly once under pytest-benchmark timing."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
