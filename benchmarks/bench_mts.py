"""r-RESPA multiple-time-step savings: drift and cost vs outer factor k.

The MBE's polymer tier dominates the per-step cost (dimers/trimers are
larger molecules and far outnumber the monomers), but intermolecular
forces vary on a slower timescale than the intramolecular monomer
forces. `repro.md.mts` exploits the split with r-RESPA: monomers every
inner step, the polymer correction tier every ``k`` steps as boundary
impulses. This benchmark runs the same glycine-chain trajectory at
``k in {1, 2, 4, 8}`` and records for each: the energy drift (must stay
within a small factor of the ``k = 1`` reference — the impulse split is
symplectic, so drift must not blow up), the calculator solve counts,
and the wall-clock per simulated fs.

The smoke variant (CI) uses the classical surrogate potential, where
wall-clock is microseconds and timing gates would be noise — the cost
gate there is the *solve count* ratio, which is deterministic. The full
variant uses RI-HF fragments, where the dimer tier really dominates,
and additionally gates on measured wall-clock per fs (>= 1.3x at
k = 4). The count-based gate weights each solve by ``natoms**3`` (SCF
scales roughly cubically), since trading large dimer solves for small
monomer solves is exactly what the split buys.

Runnable two ways:

* ``python benchmarks/bench_mts.py [--smoke] [--json PATH]`` —
  standalone CLI (CI runs the ``--smoke`` variant) writing a JSON
  record under ``benchmarks/output/``;
* ``pytest benchmarks/bench_mts.py`` — the harness form used by the
  other paper benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table  # noqa: E402
from repro.calculators import (  # noqa: E402
    PairwisePotentialCalculator,
    RIHFCalculator,
)
from repro.constants import BOHR_PER_ANGSTROM  # noqa: E402
from repro.md.aimd import run_aimd  # noqa: E402
from repro.md.integrators import maxwell_boltzmann_velocities  # noqa: E402
from repro.systems import glycine_fragmented  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

#: drift gate: |drift(k)| <= max(factor * |drift(1)|, floor). The floor
#: absorbs the near-zero-reference case (a tiny k=1 drift would turn the
#: relative gate into noise); factors loosen at large k where the
#: impulse resonance limit is approached.
DRIFT_FACTOR = {1: 1.0, 2: 2.0, 4: 2.0, 8: 4.0}
DRIFT_FLOOR_HA_PER_FS = 5.0e-5

#: the drift slope comes from a least-squares fit over a short window;
#: its standard error is sigma / sqrt(sum((t - tbar)^2)) with sigma the
#: rms energy fluctuation. A fitted slope within this many standard
#: errors of zero is statistically unresolved, not drift — without this
#: term the full (8-step RI-HF) variant gates on fit noise.
DRIFT_NOISE_SIGMAS = 3.0

#: cost gates at k = 4 (the paper-realistic operating point)
SMOKE_COST_RATIO = 1.3
FULL_WALL_RATIO = 1.3


class _CountingCalculator:
    """Counts solves and a size-weighted cost (the deterministic proxy).

    Raw solve counts undersell the split — a dimer solve costs far more
    than a monomer solve (SCF scales ~cubically with system size), and
    the whole point of the tier split is trading frequent *large* solves
    for frequent *small* ones. ``cost`` therefore accumulates
    ``natoms**3`` per solve.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.calls = 0
        self.cost = 0

    def energy_gradient(self, mol):
        self.calls += 1
        self.cost += mol.natoms**3
        return self.inner.energy_gradient(mol)


def _trajectory(system, calc, v0, nsteps: int, k: int) -> dict:
    counter = _CountingCalculator(calc)
    t0 = time.perf_counter()
    traj = run_aimd(
        system, counter, nsteps=nsteps, dt_fs=0.25,
        r_dimer_bohr=6.0 * BOHR_PER_ANGSTROM, mbe_order=2,
        replan_interval=4, velocities=v0.copy(), mts_k=k,
    )
    wall = time.perf_counter() - t0
    sim_fs = nsteps * 0.25
    return {
        "k": k,
        "solves": counter.calls,
        "cost": counter.cost,
        "wall_s": wall,
        "wall_s_per_fs": wall / sim_fs,
        "drift_ha_per_fs": traj.energy_drift(),
        "rms_fluctuation_ha": traj.energy_fluctuation(),
        "final_total_energy": float(traj.total[-1]),
    }


def run_experiment(smoke: bool = False) -> dict:
    """The same trajectory at increasing outer factors."""
    if smoke:
        system = glycine_fragmented(4)
        calc = PairwisePotentialCalculator()
        nsteps, ks = 16, [1, 2, 4]
    else:
        system = glycine_fragmented(3)
        calc = RIHFCalculator()
        nsteps, ks = 8, [1, 2, 4, 8]
    v0 = maxwell_boltzmann_velocities(
        system.parent.masses_au, 300.0, seed=7
    )
    results = {
        "smoke": smoke,
        "system": f"glycine-{'4' if smoke else '3'}mer",
        "calculator": type(calc).__name__,
        "nsteps": nsteps,
        "dt_fs": 0.25,
        "drift_floor_ha_per_fs": DRIFT_FLOOR_HA_PER_FS,
        "runs": [_trajectory(system, calc, v0, nsteps, k) for k in ks],
    }
    base = results["runs"][0]
    for run in results["runs"]:
        run["cost_ratio"] = base["cost"] / max(run["cost"], 1)
        run["wall_ratio"] = base["wall_s_per_fs"] / max(
            run["wall_s_per_fs"], 1e-12
        )
    return results


def format_results(results: dict) -> str:
    rows = []
    for run in results["runs"]:
        rows.append((
            run["k"],
            run["solves"],
            f"{run['cost_ratio']:.2f}x",
            f"{run['wall_s_per_fs']:.3f}",
            f"{run['wall_ratio']:.2f}x",
            f"{run['drift_ha_per_fs']:.2e}",
            f"{run['rms_fluctuation_ha']:.2e}",
        ))
    return format_table(
        ["k", "solves", "cost ratio", "s/fs", "wall ratio",
         "drift Ha/fs", "rms fluct Ha"],
        rows,
        title=(f"r-RESPA MTS — {results['system']} / "
               f"{results['calculator']}, {results['nsteps']} steps"),
    )


def _drift_standard_error(run: dict, results: dict) -> float:
    """Standard error of the fitted drift slope for one run.

    ``nsteps + 1`` equally spaced samples over ``nsteps * dt`` fs give
    ``sum((t - tbar)^2) = dt^2 * n (n^2 - 1) / 12``.
    """
    n = results["nsteps"] + 1
    dt = results["dt_fs"]
    spread = dt * np.sqrt(n * (n**2 - 1) / 12.0)
    return run["rms_fluctuation_ha"] / spread


def check_results(results: dict) -> None:
    """Acceptance gates: bounded drift, real cost savings at k = 4."""
    base_drift = abs(results["runs"][0]["drift_ha_per_fs"])
    for run in results["runs"]:
        bound = max(
            DRIFT_FACTOR[run["k"]] * base_drift,
            DRIFT_FLOOR_HA_PER_FS,
            DRIFT_NOISE_SIGMAS * _drift_standard_error(run, results),
        )
        assert abs(run["drift_ha_per_fs"]) <= bound, (
            f"k={run['k']}: drift {run['drift_ha_per_fs']:.2e} Ha/fs "
            f"exceeds {bound:.2e} (k=1 reference {base_drift:.2e})"
        )
    k4 = next(r for r in results["runs"] if r["k"] == 4)
    assert k4["cost_ratio"] >= SMOKE_COST_RATIO, (
        f"k=4 saved only {k4['cost_ratio']:.2f}x size-weighted cost "
        f"(expected >= {SMOKE_COST_RATIO}x)"
    )
    if not results["smoke"]:
        assert k4["wall_ratio"] >= FULL_WALL_RATIO, (
            f"k=4 wall-clock per fs improved only {k4['wall_ratio']:.2f}x "
            f"(expected >= {FULL_WALL_RATIO}x)"
        )


def _write_json(results: dict, path: Path) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="surrogate potential / solve-count gate (CI)")
    ap.add_argument("--json", type=Path,
                    default=OUTPUT_DIR / "mts.json",
                    help="JSON output path")
    args = ap.parse_args(argv)
    results = run_experiment(smoke=args.smoke)
    table = format_results(results)
    print(table)
    _write_json(results, args.json)
    print(f"\nwrote {args.json}")
    check_results(results)
    return 0


def test_mts_savings(run_once, record_output):
    results = run_once(lambda: run_experiment(smoke=False))
    table = format_results(results)
    record_output("mts", table)
    _write_json(results, OUTPUT_DIR / "mts.json")
    check_results(results)


if __name__ == "__main__":
    sys.exit(main())
