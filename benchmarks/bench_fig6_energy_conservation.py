"""Fig. 6 — total-energy conservation of asynchronous MBE-AIMD (NVE).

The paper runs 5 ps of 6PQ5 at 1 fs steps with asynchronous time steps
and shows flat total energy (small fluctuations from time
discretization and polymers crossing the cutoff). We regenerate both
characteristics: a quantum NVE run (RI-MP2 forces, water cluster,
asynchronous coordinator) and a long surrogate run on the fibril where
cutoff-crossing fluctuations are visible, reporting drift and RMS
fluctuation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyze_conservation, format_table
from repro.calculators import PairwisePotentialCalculator, RIMP2Calculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import FragmentedSystem
from repro.md import AsyncCoordinator, run_serial
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import prp_like_fibril, water_cluster


def _run_async(system, calc, nsteps, dt_fs, r_dim, r_tri, order, temp, seed):
    v0 = maxwell_boltzmann_velocities(system.parent.masses_au, temp, seed=seed)
    co = AsyncCoordinator(
        system, nsteps=nsteps, dt_fs=dt_fs, r_dimer_bohr=r_dim,
        r_trimer_bohr=r_tri, mbe_order=order, velocities=v0,
        replan_interval=5,
    )
    run_serial(co, calc)
    return co.trajectory_energies()


def test_fig6_quantum_nve(run_once, record_output):
    """RI-MP2 asynchronous NVE on a 3-water cluster."""
    mol = water_cluster(3, seed=21)
    fs = FragmentedSystem.by_components(mol)
    calc = RIMP2Calculator(basis="sto-3g")

    def experiment():
        t, pe, ke = _run_async(
            fs, calc, nsteps=12, dt_fs=0.25, r_dim=1e6, r_tri=1e6,
            order=3, temp=150, seed=3,
        )
        rep = analyze_conservation(t, pe, ke)
        table = format_table(
            ["metric", "value"],
            [
                ("steps", rep.nsteps),
                ("mean total energy (Ha)", f"{rep.mean_total:.8f}"),
                ("drift (Ha/fs)", f"{rep.drift_hartree_per_fs:.2e}"),
                ("RMS fluctuation (Ha)", f"{rep.rms_fluctuation_hartree:.2e}"),
                ("RMS fluctuation (kJ/mol)", f"{rep.rms_fluctuation_kjmol:.3f}"),
                ("max deviation (Ha)", f"{rep.max_deviation_hartree:.2e}"),
            ],
            title=(
                "Fig. 6 (quantum) — async MBE3/RI-MP2 NVE conservation, "
                "water-3, 0.25 fs steps"
            ),
        )
        return table, rep

    table, rep = run_once(experiment)
    record_output("fig6_conservation_quantum", table)
    assert abs(rep.drift_hartree_per_fs) < 5e-5
    assert rep.max_deviation_hartree < 5e-4


def test_fig6_fibril_long_surrogate(run_once, record_output):
    """Long async NVE on the 6PQ5-scale fibril with finite cutoffs:
    conservation plus the paper's cutoff-crossing fluctuations."""
    fs = prp_like_fibril()
    calc = PairwisePotentialCalculator()

    def experiment():
        t, pe, ke = _run_async(
            fs, calc, nsteps=300, dt_fs=0.5,
            r_dim=14 * BOHR_PER_ANGSTROM, r_tri=7 * BOHR_PER_ANGSTROM,
            order=3, temp=100, seed=9,
        )
        rep = analyze_conservation(t, pe, ke)
        table = format_table(
            ["metric", "value"],
            [
                ("steps", rep.nsteps),
                ("drift (Ha/fs)", f"{rep.drift_hartree_per_fs:.2e}"),
                ("RMS fluctuation (Ha)", f"{rep.rms_fluctuation_hartree:.2e}"),
                ("max deviation (Ha)", f"{rep.max_deviation_hartree:.2e}"),
            ],
            title=(
                "Fig. 6 (fibril surrogate) — async NVE over 150 fs with "
                "finite cutoffs (14 A / 7 A)"
            ),
        )
        return table, rep, (t, pe, ke)

    table, rep, (t, pe, ke) = run_once(experiment)
    record_output("fig6_conservation_fibril", table)
    tot = pe + ke
    assert len(t) == 301
    # conserved apart from discretization + cutoff-crossing noise (the
    # paper's Fig. 6 also shows visible fluctuations from polymers
    # dropping in/out at the cutoff; see bench_smooth_cutoff for the fix)
    assert abs(rep.drift_hartree_per_fs) < 5e-6
    assert rep.rms_fluctuation_hartree < 2e-3
    assert np.abs(tot - tot[0]).max() < 2e-2
