"""Sec. VII-A — time-step latency: asynchronous vs synchronous stepping.

Paper measurements:
* 6PQ5 (360 atoms, 36 monomers, 22 A / 9 A cutoffs) on 64 Perlmutter
  nodes: 2.27 s/step async vs 3.0 s/step sync -> 24% speedup, 38 ps/day.
* 2BEG 4-strand (1,496 atoms, 20 A / 12 A) on 1,024 nodes: 3.4 s/step
  async vs 5.6 s/step sync -> 40% throughput gain, 25 ps/day.

We execute the *real* coordinator state machine on the virtual
Perlmutter (event simulation, calibrated cost model) for both fibril
stand-ins and report the same quantities.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import format_table
from repro.cluster import PAPER_CALIBRATED, PERLMUTTER, simulate_aimd
from repro.constants import BOHR_PER_ANGSTROM
from repro.systems import abeta_like_fibril, prp_like_fibril

CASES = [
    # (label, factory, nodes, gpus/worker, r_dim A, r_tri A, paper async, paper sync)
    # 6PQ5: small uniform monomers, plenty of tasks per GPU -> 1-GPU workers
    ("6PQ5-like / 64 nodes", prp_like_fibril, 64, 1, 22.0, 9.0, 2.27, 3.0),
    # 2BEG: heterogeneous monomers; big trimers need multi-GPU worker
    # groups (paper Sec. V-D: groups "can utilize any number of GPUs")
    ("2BEG-like / 1024 nodes", abeta_like_fibril, 1024, 4, 20.0, 12.0, 3.4, 5.6),
]


def _ps_per_day(s_per_step: float, dt_fs: float = 1.0) -> float:
    return 86400.0 / s_per_step * dt_fs / 1000.0


def test_latency_async_vs_sync(run_once, record_output):
    def experiment():
        rows = []
        speedups = []
        tracer = None
        for label, factory, nodes, gpw, r_d, r_t, p_async, p_sync in CASES:
            fs = factory()
            kw = dict(
                machine=PERLMUTTER, nodes=nodes, nsteps=5,
                r_dimer_bohr=r_d * BOHR_PER_ANGSTROM,
                r_trimer_bohr=r_t * BOHR_PER_ANGSTROM,
                mbe_order=3, cost_model=PAPER_CALIBRATED,
                replan_interval=5, gcds_per_worker=gpw,
            )
            # trace the first (smaller) async run in virtual time
            ra = simulate_aimd(fs, synchronous=False, trace=tracer is None,
                               **kw)
            if tracer is None:
                tracer = ra.tracer
            rs = simulate_aimd(fs, synchronous=True, **kw)
            ta, ts = ra.time_per_step(), rs.time_per_step()
            speedup = (ts / ta - 1.0) * 100.0
            speedups.append(speedup)
            rows.append(
                (
                    label,
                    ra.tasks // 6,
                    f"{ta:.3f}",
                    f"{ts:.3f}",
                    f"{speedup:+.0f}%",
                    f"{p_async:.2f}/{p_sync:.2f} "
                    f"({(p_sync / p_async - 1) * 100:+.0f}%)",
                    f"{_ps_per_day(ta):.0f}",
                )
            )
        table = format_table(
            ["case", "polymers/step", "async s/step", "sync s/step",
             "speedup", "paper async/sync", "ps/day (async)"],
            rows,
            title=(
                "Sec. VII-A — time-step latency, async vs sync "
                "(event simulation of the real coordinator)"
            ),
        )
        return table, speedups, tracer

    table, speedups, tracer = run_once(experiment)
    record_output("latency_async_vs_sync", table)
    record_output(
        "latency_async_trace_summary",
        tracer.format_summary("6PQ5-like async run — virtual-time trace"),
    )
    # export and validate the chrome trace of the traced async run
    trace_path = Path(__file__).parent / "output" / "latency_async_trace.json"
    tracer.write_chrome(trace_path)
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"], "trace must contain events"
    phases = {ev["ph"] for ev in doc["traceEvents"]}
    assert "X" in phases and "C" in phases  # worker spans + queue counters
    # async wins in both cases; the bigger system benefits at least
    # comparably (paper: 24% and 40%)
    assert all(s > 5.0 for s in speedups)
