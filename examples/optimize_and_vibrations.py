"""Geometry optimization and harmonic frequencies with RI-MP2 forces.

Optimizes water at the RI-MP2/sto-3g level (BFGS on the analytic
gradient, converging to the paper's 1e-4 Ha/Bohr gradient-RMSD
criterion), then runs a seminumerical normal-mode analysis and reports
frequencies, zero-point energy, and the MP2 dipole from the relaxed
density.

Run:  python examples/optimize_and_vibrations.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Molecule,
    RIMP2Calculator,
    harmonic_analysis,
    mp2_dipole,
    optimize,
    rhf,
    zero_point_energy,
)
from repro.constants import ANGSTROM_PER_BOHR

calc = RIMP2Calculator(basis="sto-3g")
mol = Molecule.from_angstrom(
    ["O", "H", "H"],
    [[0.0, 0.0, 0.15], [0.0, 0.80, -0.45], [0.0, -0.80, -0.45]],
)

print("optimizing water at RI-MP2/sto-3g ...")
opt = optimize(mol, calc)
print(f"converged: {opt.converged} in {opt.niter} BFGS steps")
print(f"E = {opt.energy:.8f} Ha, gradient RMSD = {opt.gradient_rmsd:.2e}")
r_oh = opt.molecule.distance(0, 1) * ANGSTROM_PER_BOHR
v1 = opt.molecule.coords[1] - opt.molecule.coords[0]
v2 = opt.molecule.coords[2] - opt.molecule.coords[0]
angle = np.degrees(np.arccos(v1 @ v2 / np.linalg.norm(v1) / np.linalg.norm(v2)))
print(f"r(OH) = {r_oh:.4f} A, angle(HOH) = {angle:.2f} deg")

print("\nharmonic analysis (seminumerical Hessian from analytic gradients)")
va = harmonic_analysis(opt.molecule, calc)
vib = va.frequencies_cm1[np.abs(va.frequencies_cm1) > 100]
print("vibrational frequencies (cm^-1):", np.round(vib, 1))
print(f"zero modes: {va.n_zero_modes()}  imaginary: {va.n_imaginary()}")
print(f"ZPE = {zero_point_energy(va):.6f} Ha")

scf = rhf(opt.molecule, "sto-3g", ri=True)
d = mp2_dipole(scf)
print(f"\nMP2 relaxed-density dipole: {d.magnitude_debye:.3f} D "
      "(experiment: 1.85 D)")
