"""Project an MBE3/RI-MP2 AIMD workload onto the modeled exascale machines.

Given a urea-cluster size, this enumerates the real polymer population
from lattice geometry, assigns calibrated per-polymer costs, schedules
one AIMD step on Frontier and Perlmutter, and reports time per step,
sustained FLOP rate and machine fraction — the paper's Table V workflow
as a tool.

Run:  python examples/exascale_projection.py [nmolecules ...]
"""

from __future__ import annotations

import sys

from repro.analysis import format_table
from repro.cluster import (
    FRONTIER,
    PAPER_CALIBRATED,
    PERLMUTTER,
    simulate_workload,
    urea_workload,
)

sizes = [int(a) for a in sys.argv[1:]] or [2000, 10000, 44532, 63854]

rows = []
for nmol in sizes:
    stats = urea_workload(nmol)
    electrons = stats.nmonomers * stats.electrons_per_monomer
    for machine, nodes in ((FRONTIER, FRONTIER.nodes), (PERLMUTTER, PERLMUTTER.nodes)):
        res = simulate_workload(
            stats, machine, nodes, nsteps=3, cost_model=PAPER_CALIBRATED
        )
        rows.append(
            (
                f"{nmol:,}",
                f"{electrons:,}",
                f"{stats.npolymers:,}",
                machine.name,
                nodes,
                f"{res.time_per_step_s / 60:.1f}",
                f"{res.flop_rate_pflops:.0f}",
                f"{100 * res.fraction_of_peak(machine):.0f}%",
            )
        )

print(format_table(
    ["urea molecules", "electrons", "polymers/step", "machine", "nodes",
     "min/step", "PFLOP/s", "% of peak"],
    rows,
    title="Exascale projections for MBE3/RI-MP2 AIMD (cc-pVDZ-scale basis, "
          "15.3 A cutoffs)",
))
print("\nThe paper's record: 63,854 urea (2,043,328 e-) at 25.6 min/step, "
      "1006.7 PFLOP/s (59% of Frontier).")
