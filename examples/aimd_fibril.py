"""Asynchronous fragment AIMD of a protein-fibril stand-in.

Reproduces the paper's Sec. VII-A workflow end to end at laptop scale:

1. build a beta-strand fibril fragmented per residue (H-caps across
   the peptide bonds);
2. determine dimer/trimer cutoffs from per-polymer energy
   contributions (Fig. 5 methodology);
3. run NVE dynamics through the *asynchronous* coordinator — monomers
   near the reference fragment advance to the next time step while the
   far side of the system is still finishing the previous one;
4. check total-energy conservation (Fig. 6).

The default potential is the classical surrogate so the script runs in
seconds; pass --quantum for real RI-MP2 forces on a smaller fibril.

Run:  python examples/aimd_fibril.py [--quantum]
"""

from __future__ import annotations

import argparse

from repro.analysis import analyze_conservation
from repro.calculators import PairwisePotentialCalculator, RIMP2Calculator
from repro.constants import BOHR_PER_ANGSTROM
from repro.frag import determine_cutoffs
from repro.md import AsyncCoordinator, run_serial
from repro.md.integrators import maxwell_boltzmann_velocities
from repro.systems import fibril_fragmented

parser = argparse.ArgumentParser()
parser.add_argument("--quantum", action="store_true",
                    help="use real RI-MP2 forces (slower)")
args = parser.parse_args()

if args.quantum:
    fs = fibril_fragmented(nstrands=1, residues_per_strand=2)
    calc = RIMP2Calculator(basis="sto-3g")
    nsteps, dt = 5, 0.25
else:
    fs = fibril_fragmented(nstrands=4, residues_per_strand=6)
    calc = PairwisePotentialCalculator(at_strength=5.0)
    nsteps, dt = 100, 0.5

print(f"fibril: {fs.parent.natoms} atoms, {fs.nmonomers} monomers, "
      f"{fs.parent.nelectrons} electrons")

# --- cutoff determination (Fig. 5, the paper's 0.1 kJ/mol threshold) -------
r_dim, r_tri, dimer_curve, trimer_curve = determine_cutoffs(
    fs, calc, reference=0, threshold_kjmol=0.1, trimer_scan_angstrom=10.0
)
r_dim = min(max(r_dim, 8.0), 16.0)
r_tri = max(min(r_tri, r_dim), 5.0)
print(f"cutoffs from contribution screening: dimers {r_dim:.1f} A, "
      f"trimers {r_tri:.1f} A "
      f"({len(dimer_curve.distances_angstrom)} dimers scanned)")

# --- asynchronous NVE dynamics ---------------------------------------------
v0 = maxwell_boltzmann_velocities(fs.parent.masses_au, 150.0, seed=7)
coordinator = AsyncCoordinator(
    fs,
    nsteps=nsteps,
    dt_fs=dt,
    r_dimer_bohr=r_dim * BOHR_PER_ANGSTROM,
    r_trimer_bohr=r_tri * BOHR_PER_ANGSTROM,
    mbe_order=3,
    velocities=v0,
    replan_interval=5,
)
print(f"reference monomer (extremity): {coordinator.reference}")
run_serial(coordinator, calc)

t, pe, ke = coordinator.trajectory_energies()
rep = analyze_conservation(t, pe, ke)
print(f"\n{nsteps} steps x {dt} fs, {coordinator.tasks_issued} polymer "
      f"calculations")
print(f"total energy: {rep.mean_total:.6f} Ha")
print(f"drift: {rep.drift_hartree_per_fs:.2e} Ha/fs   "
      f"RMS fluctuation: {rep.rms_fluctuation_kjmol:.4f} kJ/mol")
print("energy conserved:", rep.conserved())
