"""Crystal polymorph energetics with MBE3/RI-MP2 — the paper's chemistry
motivation (Sec. VI-B).

Lattice-energy differences between polymorphs are typically < 2 kJ/mol
per molecule, beyond force fields and hybrid DFT; the paper argues that
MBE3 with MP2 resolves them. This example compares the lattice energy
(per molecule, relative to isolated molecules) of two urea packings —
the reference idealized lattice and a c-axis-compressed variant — using
MBE2 and MBE3 with real RI-MP2, on small spherical clusters.

Run:  python examples/crystal_polymorph.py
"""

from __future__ import annotations

import numpy as np

from repro.calculators import RIMP2Calculator
from repro.constants import BOHR_PER_ANGSTROM, KJMOL_PER_HARTREE
from repro.frag import FragmentedSystem, build_plan, mbe_energy
from repro.systems import urea_cluster, urea_molecule

calc = RIMP2Calculator(basis="sto-3g")
NMOL = 6
R_DIMER = 12.0 * BOHR_PER_ANGSTROM
R_TRIMER = 8.0 * BOHR_PER_ANGSTROM

# reference molecule energy (isolated)
e_mono = calc.energy(urea_molecule())
print(f"isolated urea RI-MP2 energy: {e_mono:.6f} Ha")

def lattice_energy(cluster, order: int) -> float:
    """MBE lattice energy per molecule, kJ/mol."""
    fs = FragmentedSystem.by_components(cluster)
    plan = build_plan(fs, R_DIMER, R_TRIMER if order == 3 else None, order=order)
    e = mbe_energy(fs, plan, calc)
    return (e / fs.nmonomers - e_mono) * KJMOL_PER_HARTREE

# polymorph A: the reference packing
form_a = urea_cluster(NMOL)
# polymorph B: compress the cluster 4% along c (a denser packing)
coords_b = form_a.coords.copy()
coords_b[:, 2] *= 0.96
form_b = form_a.with_coords(coords_b)

print(f"\n{NMOL}-molecule clusters, cutoffs "
      f"{R_DIMER / BOHR_PER_ANGSTROM:.0f}/{R_TRIMER / BOHR_PER_ANGSTROM:.0f} A")
print(f"{'packing':<12s} {'MBE2 kJ/mol':>12s} {'MBE3 kJ/mol':>12s} "
      f"{'3-body kJ/mol':>14s}")
results = {}
for name, cluster in (("form A", form_a), ("form B", form_b)):
    e2 = lattice_energy(cluster, 2)
    e3 = lattice_energy(cluster, 3)
    results[name] = e3
    print(f"{name:<12s} {e2:12.3f} {e3:12.3f} {e3 - e2:14.3f}")

diff = results["form B"] - results["form A"]
print(f"\npolymorph energy difference (MBE3/RI-MP2): {diff:+.3f} kJ/mol "
      f"per molecule")
print("(the paper's point: such sub-2-kJ/mol differences demand "
      "three-body MP2 treatment)")
