"""Quickstart: RI-HF + RI-MP2 energy and analytic gradient of one molecule.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Molecule, mp2, rhf, rimp2_gradient
from repro.gemm import GLOBAL_TUNER, count_flops

# Water at a standard geometry (Angstrom).
mol = Molecule.from_angstrom(
    ["O", "H", "H"],
    [[0.0, 0.0, 0.1173], [0.0, 0.7572, -0.4692], [0.0, -0.7572, -0.4692]],
)

print(f"molecule: {mol.formula()}  ({mol.nelectrons} electrons)")

with count_flops() as flops:
    # RI-HF: the Fock build is a pure GEMM sequence over the fitted
    # three-center tensor (paper Eq. 8); the auxiliary basis is
    # auto-generated (even-tempered stand-in for cc-pVDZ-RIFIT).
    scf = rhf(mol, "repro-dz", ri=True)
    print(f"RI-HF energy:      {scf.energy:.8f} Ha "
          f"({scf.niter} SCF iterations)")

    # RI-MP2 correlation energy, Eq. (9): (ia|jb) = sum_P B_ia^P B_jb^P.
    corr = mp2(scf)
    print(f"RI-MP2 correction: {corr.e_corr:.8f} Ha")
    print(f"total energy:      {corr.e_total:.8f} Ha")

    # Fully analytic RI-HF + RI-MP2 nuclear gradient — no four-center
    # integrals or derivatives anywhere (paper Sec. V-E + Appendix).
    grad = rimp2_gradient(scf)

print("\ngradient (Ha/Bohr):")
for sym, g in zip(mol.symbols, grad):
    print(f"  {sym:<2s} {g[0]:12.8f} {g[1]:12.8f} {g[2]:12.8f}")
print(f"\n|g| max: {np.abs(grad).max():.6f}   "
      f"translational sum: {np.abs(grad.sum(axis=0)).max():.2e}")

# Runtime FLOP accounting: every GEMM adds 2mnk (paper Sec. VI-C), and
# the auto-tuner has been picking NN/NT/TN/TT variants per shape.
print(f"\ncounted GEMM FLOPs: {flops.flops:,} in {flops.calls} calls")
print(f"GEMM shapes auto-tuned so far: {len(GLOBAL_TUNER.best)}")
